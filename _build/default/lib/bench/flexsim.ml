(* flexsim: the flex stand-in — a table-driven scanner generator plus
   the scanner it generates.  The generation phase builds a character
   class table from configuration constants (the analogue of flex
   compiling token definitions); the scanning phase runs a small DFA
   over the input, emitting a (kind, length) pair per token as it goes
   (flex "emits results gradually", which the paper credits for its easy
   debugging) and a summary block at the end.

   Token kinds: 1 number, 2 identifier, 3 punctuation, 4 keyword. *)

let source =
  {|// flexsim: scanner generator + scanner
int uscore_flag = 1;
int ci_flag = 1;
int dollar_flag = 1;
int flush_limit = 8;
int nl_code = 10;
int[] cls;
int[] buf;
int n_tokens = 0;
int n_idents = 0;
int n_numbers = 0;
int n_keywords = 0;
int lines = 1;
int maxlen = 0;
int pending = 0;
int flushes = 0;
int flushed_total = 0;
int checksum = 0;

void build_classes() {
  cls = new_array(128);
  int c = 0;
  while (c < 128) {
    if (c >= 48 && c <= 57) {
      cls[c] = 1;
    }
    if (c >= 97 && c <= 122) {
      cls[c] = 2;
    }
    if (c >= 65 && c <= 90) {
      cls[c] = 3;
    }
    if (c == 40 || c == 41 || c == 42 || c == 43 || c == 45 || c == 47 || c == 59 || c == 61) {
      cls[c] = 4;
    }
    c = c + 1;
  }
  if (uscore_flag == 1) {
    cls[95] = 2;
  }
  if (dollar_flag == 1) {
    cls[36] = 2;
  }
}

int fold(int ch) {
  int r = ch;
  if (ci_flag == 1 && ch >= 65 && ch <= 90) {
    r = ch + 32;
  }
  return r;
}

int is_keyword(int start, int len) {
  int hit = 0;
  if (len == 3) {
    if (fold(buf[start]) == 108 && fold(buf[start + 1]) == 101 && fold(buf[start + 2]) == 116) {
      hit = 1;
    }
  }
  if (len == 2) {
    if (fold(buf[start]) == 105 && fold(buf[start + 1]) == 102) {
      hit = 1;
    }
  }
  return hit;
}

void emit(int kind, int len) {
  n_tokens = n_tokens + 1;
  checksum = checksum + kind * 7 + len;
  pending = pending + len;
  if (pending >= flush_limit) {
    flushed_total = flushed_total + pending;
    pending = 0;
    flushes = flushes + 1;
  }
  print(kind);
  print(len);
}

int class_of(int ch) {
  int k = 0;
  if (ch >= 0 && ch < 128) {
    k = cls[ch];
  }
  return k;
}

void main() {
  build_classes();
  int n = input();
  buf = new_array(n + 1);
  int i = 0;
  while (i < n) {
    buf[i] = input();
    i = i + 1;
  }
  buf[n] = 0;
  i = 0;
  while (i < n) {
    int ch = buf[i];
    if (ch == nl_code) {
      lines = lines + 1;
    }
    int k = class_of(ch);
    if (k == 2 || k == 3) {
      int s = i;
      int more = 1;
      while (more == 1) {
        i = i + 1;
        if (i >= n) {
          more = 0;
        } else {
          int kk = class_of(buf[i]);
          if (kk != 1 && kk != 2 && kk != 3) {
            more = 0;
          }
        }
      }
      int len = i - s;
      if (len > maxlen) {
        maxlen = len;
      }
      if (is_keyword(s, len) == 1) {
        n_keywords = n_keywords + 1;
        emit(4, len);
      } else {
        n_idents = n_idents + 1;
        emit(2, len);
      }
    } else {
      if (k == 1) {
        int s2 = i;
        int more2 = 1;
        while (more2 == 1) {
          i = i + 1;
          if (i >= n) {
            more2 = 0;
          } else {
            int kk2 = class_of(buf[i]);
            if (kk2 != 1) {
              more2 = 0;
            }
          }
        }
        int len2 = i - s2;
        if (len2 > maxlen) {
          maxlen = len2;
        }
        n_numbers = n_numbers + 1;
        emit(1, len2);
      } else {
        if (k == 4) {
          emit(3, 1);
        }
        i = i + 1;
      }
    }
  }
  print(n_tokens);
  print(n_idents);
  print(n_numbers);
  print(n_keywords);
  print(lines);
  print(maxlen);
  print(flushes);
  print(flushed_total);
  print(checksum);
}
|}

let text = Bench_types.input_of_string

let faults =
  [ {
      Bench_types.fid = "V1-F9";
      description =
        "underscore not registered as an identifier character: the class \
         table update is omitted and identifiers split";
      pattern = "int uscore_flag = 1;";
      replacement = "int uscore_flag = 0;";
      failing_input = text "a_b = 12; let k_v = 7;";
    };
    {
      Bench_types.fid = "V2-F14";
      description =
        "case folding disabled: uppercase keywords are not normalized and \
         miss the keyword table";
      pattern = "int ci_flag = 1;";
      replacement = "int ci_flag = 0;";
      failing_input = text "LET x = 5; let y = 6;";
    };
    {
      Bench_types.fid = "V3-F10";
      description =
        "wrong newline code: the line counter update is never executed";
      pattern = "int nl_code = 10;";
      replacement = "int nl_code = 13;";
      failing_input = text "ab cd;\n12 ef;\nlet z = 1;";
    };
    {
      Bench_types.fid = "V4-F6";
      description =
        "flush threshold far too high: the buffer flush branch is never \
         taken and the flush counters stay zero";
      pattern = "int flush_limit = 8;";
      replacement = "int flush_limit = 800;";
      failing_input = text "alpha beta gamma delta; 42 epsilon;";
    };
    {
      Bench_types.fid = "V5-F6";
      description =
        "wrong keyword length test: three-letter keywords are never \
         recognized";
      pattern = "if (len == 3) {";
      replacement = "if (len == 30) {";
      failing_input = text "let a = 1; if a let b;";
    } ]

let bench =
  {
    Bench_types.name = "flexsim";
    description = "a fast lexical analyzer generator (scanner generator + DFA scanner)";
    error_type = "seeded";
    source;
    faults;
    test_inputs =
      [ text "x = 1;";
        text "let a_b = 12;";
        text "IF x LET yy;";
        text "aa bb cc dd ee ff;";
        text "1 22 333 4444;";
        text "a\nb\nc";
        text "$v = a_1 + 2;" ];
  }
