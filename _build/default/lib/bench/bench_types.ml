module Ast = Exom_lang.Ast

(* A seeded fault: an expression-level mutation of one line of the
   correct source.  Expression-level mutations preserve statement counts
   and therefore statement ids, which lets the faulty and corrected runs
   be aligned (the oracle) and lets the fault's line identify the
   root-cause statements. *)
type fault = {
  fid : string;  (* e.g. "V1-F9", mirroring the paper's error names *)
  description : string;
  pattern : string;  (* unique substring of the line to mutate *)
  replacement : string;
  failing_input : int list;
}

type t = {
  name : string;
  description : string;
  error_type : string;  (* Table 1's "Error type" column *)
  source : string;  (* the correct program *)
  faults : fault list;
  test_inputs : int list list;  (* passing runs: profiles + regression *)
}

(* Program input encoding for text-processing benchmarks: length-prefixed
   character codes. *)
let input_of_string s =
  String.length s :: List.init (String.length s) (fun i -> Char.code s.[i])

let find_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  if nn = 0 then invalid_arg "find_substring: empty needle";
  let rec scan i =
    if i + nn > nh then None
    else if String.sub hay i nn = needle then Some i
    else scan (i + 1)
  in
  scan 0

(* 1-based line number of the fault's pattern in the correct source. *)
let fault_line bench fault =
  match find_substring bench.source fault.pattern with
  | None ->
    invalid_arg
      (Printf.sprintf "fault %s: pattern %S not found in %s" fault.fid
         fault.pattern bench.name)
  | Some pos ->
    let line = ref 1 in
    for i = 0 to pos - 1 do
      if bench.source.[i] = '\n' then incr line
    done;
    !line

let faulty_source bench fault =
  match find_substring bench.source fault.pattern with
  | None ->
    invalid_arg
      (Printf.sprintf "fault %s: pattern %S not found" fault.fid fault.pattern)
  | Some pos ->
    String.concat ""
      [ String.sub bench.source 0 pos;
        fault.replacement;
        String.sub bench.source
          (pos + String.length fault.pattern)
          (String.length bench.source - pos - String.length fault.pattern) ]

(* Root-cause statements: everything on the mutated line. *)
let root_sids bench fault prog =
  let line = fault_line bench fault in
  let sids = ref [] in
  Ast.iter_program
    (fun s ->
      if Exom_lang.Loc.line s.Ast.sloc = line then sids := s.Ast.sid :: !sids)
    prog;
  if !sids = [] then
    invalid_arg
      (Printf.sprintf "fault %s: no statement on line %d" fault.fid line);
  List.rev !sids

let loc_count bench =
  String.split_on_char '\n' bench.source
  |> List.filter (fun l -> String.trim l <> "")
  |> List.length

let procedure_count prog = List.length prog.Ast.funcs
