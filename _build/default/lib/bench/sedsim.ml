(* sedsim: the sed stand-in — a stream editor applying a substitution
   command to a line-structured input, with global/first-only modes,
   empty-line deletion and optional line numbering.  The V3-F2 fault is
   the paper's cascading case: command validation fails, so command
   parsing is omitted, so the substitution is omitted — locating it
   needs two expansions along two strong implicit dependence edges
   (Table 3's sed row is the only one with 2 iterations / 2 edges).

   Output: the transformed character stream, then summary counters. *)

let source =
  {|// sedsim: stream editor (substitute command)
int cmd_valid = 1;
int subst_from = 97;
int subst_to = 111;
int global_flag = 1;
int number_flag = 1;
int del_empty = 1;
int cmd_parsed = 0;
int[] text;
int n = 0;
int[] out;
int outn = 0;
int subs = 0;
int deleted = 0;
int lines_in = 0;
int lines_out = 0;
int done_first = 0;

void parse_command() {
  if (cmd_valid == 1) {
    cmd_parsed = 1;
  }
}

int transform(int ch) {
  int r = ch;
  if (cmd_parsed == 1) {
    if (ch == subst_from) {
      if (global_flag == 1 || done_first == 0) {
        r = subst_to;
        subs = subs + 1;
        done_first = 1;
      }
    }
  }
  return r;
}

void put(int b) {
  out[outn] = b;
  outn = outn + 1;
}

void main() {
  parse_command();
  n = input();
  text = new_array(n + 1);
  int i = 0;
  while (i < n) {
    text[i] = input();
    i = i + 1;
  }
  out = new_array(2 * n + 16);
  int pos = 0;
  while (pos <= n) {
    int lstart = pos;
    int llen = 0;
    while (pos < n && text[pos] != 10) {
      llen = llen + 1;
      pos = pos + 1;
    }
    pos = pos + 1;
    lines_in = lines_in + 1;
    if (del_empty == 1 && llen == 0) {
      deleted = deleted + 1;
    } else {
      lines_out = lines_out + 1;
      if (number_flag == 1) {
        put(lines_out);
      }
      int k = 0;
      while (k < llen) {
        put(transform(text[lstart + k]));
        k = k + 1;
      }
      put(10);
    }
  }
  int r = 0;
  while (r < outn) {
    print(out[r]);
    r = r + 1;
  }
  print(lines_in);
  print(lines_out);
  print(subs);
  print(deleted);
}
|}

let text = Bench_types.input_of_string

let faults =
  [ {
      Bench_types.fid = "V3-F2";
      description =
        "command validation wrongly fails: parsing is omitted, so the \
         substitution is omitted — a two-deep omission cascade (real \
         error shape)";
      pattern = "int cmd_valid = 1;";
      replacement = "int cmd_valid = 0;";
      failing_input = text "war and peace\nbanana";
    };
    {
      Bench_types.fid = "V3-F3";
      description =
        "line numbering disabled: the number prefix is never emitted and \
         the output stream shifts";
      pattern = "int number_flag = 1;";
      replacement = "int number_flag = 0;";
      failing_input = text "hi\nthere";
    } ]

let bench =
  {
    Bench_types.name = "sedsim";
    description = "a stream editor for filtering and transforming text";
    error_type = "real & seeded";
    source;
    faults;
    test_inputs =
      [ text "abc";
        text "xyz\nqqq";
        text "aaa\n\nbbb";
        text "no vowels here!";
        text "a" ];
  }
