(** Ablations of the paper's design decisions.

    {b Potential-edge confidence} (§3.2's rejected alternative):
    propagating confidence over unverified potential dependence edges
    can mark the faulty statement correct — measured per fault by
    comparing the root-cause instance's confidence with and without the
    blind edge set.

    {b Edge vs path VerifyDep}: the paper's cheap edge approximation
    against the safe path test, compared by full localization runs. *)

type sanitization = {
  root_instance : int;
  conf_verified : float;
  conf_potential : float;
  sanitized : bool;
      (** the blind edges raised the root's confidence to 1 while the
          verified-only graph did not *)
}

val potential_confidence_sanitizes :
  Bench_types.t -> Bench_types.fault -> sanitization

(** All potential-dependence edges feeding the correct/wrong outputs'
    slices, uncapped semantics capped at [cap] edges. *)
val potential_edges : ?cap:int -> Exom_core.Session.t -> (int * int) list

type rs_backends = {
  rs_static : int * int;  (** RS (static, dynamic) with static cond (iv) *)
  rs_union : int * int;  (** ... with the union-graph evidence filter *)
  union_pairs : int;
  root_in_static : bool;
  root_in_union : bool;
}

(** Relevant-slice sizes under the purely static condition (iv) vs the
    paper's union-dependence-graph evidence. *)
val compare_rs_backends : Bench_types.t -> Bench_types.fault -> rs_backends

type critical_comparison = {
  critical_found : int;
  critical_executions : int;
  demand_verifications : int;
  demand_found : bool;
}

(** The §6 contrast: whole-output critical-predicate search (ICSE'06
    [18]) vs the demand-driven technique, on one fault. *)
val compare_with_critical_search :
  ?cap:int -> Bench_types.t -> Bench_types.fault -> critical_comparison

type mode_comparison = {
  edge_report : Exom_core.Demand.report;
  path_report : Exom_core.Demand.report;
}

val compare_verify_modes :
  ?max_iterations:int -> Bench_types.t -> Bench_types.fault -> mode_comparison
