(** The grepsim benchmark: see {!Bench_types} for the fault/suite model and
    the module implementation for the MCL program it embeds. *)

val bench : Bench_types.t
