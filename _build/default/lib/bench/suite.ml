(* The benchmark suite mirroring the paper's Table 1: four medium-sized
   utility emulations with seeded (and, for sed, cascading "real"-shaped)
   execution omission errors. *)

let all = [ Flexsim.bench; Grepsim.bench; Gzipsim.bench; Sedsim.bench ]

let find name =
  List.find_opt (fun b -> b.Bench_types.name = name) all

let find_fault bench fid =
  List.find_opt (fun f -> f.Bench_types.fid = fid) bench.Bench_types.faults

(* The paper's Table 2/3 row set: every (benchmark, fault) pair. *)
let rows =
  List.concat_map
    (fun b -> List.map (fun f -> (b, f)) b.Bench_types.faults)
    all
