(* gzipsim: the gzip stand-in — an LZ77 compressor with a small sliding
   window and a gzip-like header, including the very flags byte of the
   paper's Figure 1: option bits are ORed into [flags] under option
   predicates, and the original-name bytes are appended only when
   [save_orig_name] is set.  The V2-F3 fault reproduces the paper's
   motivating bug: [save_orig_name] is wrongly false, the flag bit and
   name bytes are omitted, and the header printed at the end carries the
   wrong values.

   The program also decompresses its own output and verifies the round
   trip (the decoder parses the header flags to find the data offset —
   the V2-F9 fault omits the name-skip there and corrupts the decode).

   Output: the first 12 bytes of the compressed stream, then summary
   counters including the round-trip mismatch count. *)

let source =
  {|// gzipsim: LZ77 with gzip-like header
int save_orig_name = 1;
int level_flag = 2;
int min_match = 3;
int window = 16;
int name_len = 4;
int magic1 = 31;
int magic2 = 139;
int method_code = 8;
int[] text;
int n = 0;
int name_bit = 8;
int[] outbuf;
int outcnt = 0;
int literals = 0;
int matches = 0;
int crc = 0;
int[] decoded;
int dpos = 0;
int mismatches = 0;

void put(int b) {
  outbuf[outcnt] = b;
  outcnt = outcnt + 1;
  crc = (crc * 3 + b) % 1000;
}

// longest match for position [pos] within the last [window] bytes;
// encodes distance * 256 + length, or 0 when below min_match
int longest_match(int pos) {
  int best_len = 0;
  int best_dist = 0;
  int start = pos - window;
  if (start < 0) {
    start = 0;
  }
  int cand = start;
  while (cand < pos) {
    int len = 0;
    while (pos + len < n && text[cand + len] == text[pos + len] && len < 255) {
      len = len + 1;
    }
    if (len > best_len) {
      best_len = len;
      best_dist = pos - cand;
    }
    cand = cand + 1;
  }
  int enc = 0;
  if (best_len >= min_match) {
    enc = best_dist * 256 + best_len;
  }
  return enc;
}

void main() {
  n = input();
  text = new_array(n + 1);
  int i = 0;
  while (i < n) {
    text[i] = input();
    i = i + 1;
  }
  outbuf = new_array(3 * n + 32);
  put(magic1);
  put(magic2);
  put(method_code);
  int flags = 0;
  if (level_flag == 2) {
    flags = flags + 4;
  }
  if (save_orig_name == 1) {
    flags = flags + 8;
  }
  put(flags);
  if (save_orig_name == 1) {
    int q = 0;
    while (q < name_len) {
      put(65 + q);
      q = q + 1;
    }
  }
  int pos = 0;
  while (pos < n) {
    int enc = longest_match(pos);
    if (enc > 0) {
      int mlen = enc % 256;
      int mdist = enc / 256;
      put(1);
      put(mdist);
      put(mlen);
      matches = matches + 1;
      pos = pos + mlen;
    } else {
      put(0);
      put(text[pos]);
      literals = literals + 1;
      pos = pos + 1;
    }
  }
  int r = 0;
  while (r < 12) {
    print(outbuf[r]);
    r = r + 1;
  }
  print(outcnt);
  print(literals);
  print(matches);
  print(crc);
  decompress();
  int m = 0;
  while (m < n) {
    if (m < dpos) {
      if (decoded[m] != text[m]) {
        mismatches = mismatches + 1;
      }
    } else {
      mismatches = mismatches + 1;
    }
    m = m + 1;
  }
  print(dpos);
  print(mismatches);
}

// parse the header (skipping the name bytes when the flags bit says
// they are present), then replay the literal/match token stream
void decompress() {
  decoded = new_array(n + 8);
  int from = 4;
  int fl = outbuf[3];
  if (fl / name_bit % 2 == 1) {
    from = from + name_len;
  }
  while (from < outcnt) {
    int tag = outbuf[from];
    if (tag == 1) {
      int mdist = outbuf[from + 1];
      int mlen = outbuf[from + 2];
      int c2 = 0;
      while (c2 < mlen) {
        decoded[dpos] = decoded[dpos - mdist];
        dpos = dpos + 1;
        c2 = c2 + 1;
      }
      from = from + 3;
    } else {
      decoded[dpos] = outbuf[from + 1];
      dpos = dpos + 1;
      from = from + 2;
    }
  }
}
|}

let text = Bench_types.input_of_string

let faults =
  [ {
      Bench_types.fid = "V2-F3";
      description =
        "save_orig_name wrongly false (the paper's Figure 1): the flags \
         bit is not ORed in and the name bytes are omitted, shifting the \
         whole output stream";
      pattern = "int save_orig_name = 1;";
      replacement = "int save_orig_name = 0;";
      failing_input = text "abcabcabcxyz";
    };
    {
      Bench_types.fid = "V2-F9";
      description =
        "wrong flags bit tested by the decoder: the name-skip is omitted \
         and the decoder misparses the stream";
      pattern = "int name_bit = 8;";
      replacement = "int name_bit = 80;";
      failing_input = text "abcabcabcxyz";
    };
    {
      Bench_types.fid = "V2-F7";
      description =
        "minimum match length set absurdly high: matches are never \
         emitted and everything is a literal";
      pattern = "int min_match = 3;";
      replacement = "int min_match = 300;";
      failing_input = text "ababababab";
    } ]

let bench =
  {
    Bench_types.name = "gzipsim";
    description = "a LZ77 based compressor with gzip-style header flags";
    error_type = "seeded";
    source;
    faults;
    test_inputs =
      [ text "aaaa";
        text "abcd";
        text "abcabc";
        text "xyxyxyxy";
        text "hello hello" ];
  }
