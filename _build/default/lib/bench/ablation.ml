module Typecheck = Exom_lang.Typecheck
module Interp = Exom_interp.Interp
module Trace = Exom_interp.Trace
module Slice = Exom_ddg.Slice
module Relevant = Exom_ddg.Relevant
module Confidence = Exom_conf.Confidence
module Demand = Exom_core.Demand
module Oracle = Exom_core.Oracle
module Session = Exom_core.Session
module Verify = Exom_core.Verify

(* Ablation studies for the design decisions DESIGN.md calls out.

   1. "Relevant slicing + confidence analysis" — the plausible
      alternative §3.2 of the paper dismantles: propagating confidence
      along *unverified* potential dependence edges lets false edges
      carry confidence-1 values onto the faulty predicate, sanitizing
      the root cause.  {!potential_confidence_sanitizes} reproduces the
      effect per fault.

   2. Edge- vs path-based VerifyDep (the unsafe/safe pair of §3.2),
      exercised by running the locator with either {!Verify.mode}. *)

(* Enumerate unverified potential edges (p, t), the way a direct
   relevant-slicing + confidence combination would: every use in the
   slices of the correct and wrong outputs contributes its PD edges.
   Capped: the edge set is the point, not its completeness. *)
let potential_edges ?(cap = 4000) (s : Session.t) =
  let targets =
    Slice.Iset.union
      (Slice.members
         (Slice.compute s.Session.trace ~criteria:[ s.Session.wrong_output ]))
      (Slice.members
         (Slice.compute s.Session.trace ~criteria:s.Session.correct_outputs))
  in
  let edges = ref [] in
  let count = ref 0 in
  Slice.Iset.iter
    (fun t ->
      if !count < cap then
        List.iter
          (fun p ->
            if !count < cap then begin
              edges := (p, t) :: !edges;
              incr count
            end)
          (Relevant.pd s.Session.rel t))
    targets;
  !edges

type sanitization = {
  root_instance : int;
  conf_verified : float;  (* confidence of the root with no extra edges *)
  conf_potential : float;  (* ... with blind potential edges *)
  sanitized : bool;
}

(* Does propagating confidence over blind potential edges wrongly assign
   the root-cause instance confidence 1 (prune it as "correct")? *)
let potential_confidence_sanitizes bench fault =
  let faulty = Typecheck.parse_and_check (Bench_types.faulty_source bench fault) in
  let correct = Typecheck.parse_and_check bench.Bench_types.source in
  let input = fault.Bench_types.failing_input in
  let expected = Oracle.expected ~correct_prog:correct ~input in
  let s =
    Session.create ~prog:faulty ~input ~expected
      ~profile_inputs:bench.Bench_types.test_inputs ()
  in
  let roots = Bench_types.root_sids bench fault faulty in
  let root_instance =
    let found = ref (-1) in
    Trace.iter
      (fun i -> if !found < 0 && List.mem i.Trace.sid roots then found := i.Trace.idx)
      s.Session.trace;
    !found
  in
  let conf_of ~implicit =
    let c =
      Confidence.compute s.Session.info s.Session.profile s.Session.trace
        ~correct:s.Session.correct_outputs ~benign:[] ~implicit
    in
    Confidence.confidence c root_instance
  in
  let conf_verified = conf_of ~implicit:[] in
  let conf_potential = conf_of ~implicit:(potential_edges s) in
  {
    root_instance;
    conf_verified;
    conf_potential;
    sanitized = conf_potential >= 0.999 && conf_verified < 0.999;
  }

(* 3. Static vs union-graph condition (iv): the paper computed potential
   dependences over a "union dependence graph" collected from test runs;
   we default to a purely static analysis.  Compare the relevant-slice
   sizes and whether the root stays captured under both backends. *)

type rs_backends = {
  rs_static : int * int;  (* static size, dynamic size *)
  rs_union : int * int;
  union_pairs : int;
  root_in_static : bool;
  root_in_union : bool;
}

let compare_rs_backends bench fault =
  let faulty = Typecheck.parse_and_check (Bench_types.faulty_source bench fault) in
  let correct = Typecheck.parse_and_check bench.Bench_types.source in
  let input = fault.Bench_types.failing_input in
  let expected = Oracle.expected ~correct_prog:correct ~input in
  let s =
    Session.create ~prog:faulty ~input ~expected
      ~profile_inputs:bench.Bench_types.test_inputs ()
  in
  let trace = s.Session.trace in
  let roots = Bench_types.root_sids bench fault faulty in
  let criterion = s.Session.wrong_output in
  (* like the paper: union the dependences exercised by the test suite
     (runs of the same faulty binary), failing input included *)
  let union =
    Exom_ddg.Union_graph.collect faulty
      (input :: bench.Bench_types.test_inputs)
  in
  let slice_with rel =
    let sl = Relevant.relevant_slice rel ~criteria:[ criterion ] in
    ( (Slice.static_size sl, Slice.dynamic_size sl),
      List.exists (Slice.mem_sid sl) roots )
  in
  let rs_static, root_in_static = slice_with s.Session.rel in
  let rs_union, root_in_union =
    slice_with
      (Relevant.create
         ~observed:(Exom_ddg.Union_graph.evidence_filter union)
         s.Session.info trace)
  in
  {
    rs_static;
    rs_union;
    union_pairs = Exom_ddg.Union_graph.size union;
    root_in_static;
    root_in_union;
  }

(* 4. Critical-predicate search (ICSE'06 [18], the paper's §6 contrast):
   whole-output predicate switching, one untraced re-execution per
   candidate instance. *)

type critical_comparison = {
  critical_found : int;  (* number of critical predicates discovered *)
  critical_executions : int;
  demand_verifications : int;
  demand_found : bool;
}

let compare_with_critical_search ?(cap = 3000) bench fault =
  let faulty = Typecheck.parse_and_check (Bench_types.faulty_source bench fault) in
  let correct = Typecheck.parse_and_check bench.Bench_types.source in
  let input = fault.Bench_types.failing_input in
  let expected = Oracle.expected ~correct_prog:correct ~input in
  let s =
    Session.create ~prog:faulty ~input ~expected
      ~profile_inputs:bench.Bench_types.test_inputs ()
  in
  let crit = Exom_core.Critical.find ~cap s ~expected in
  (* fresh session for the demand-driven run (verification counters) *)
  let s2 =
    Session.create ~prog:faulty ~input ~expected
      ~profile_inputs:bench.Bench_types.test_inputs ()
  in
  let oracle =
    Oracle.create ~faulty_trace:s2.Session.trace ~correct_prog:correct ~input
  in
  let roots = Bench_types.root_sids bench fault faulty in
  let report = Demand.locate s2 ~oracle ~root_sids:roots in
  {
    critical_found = List.length crit.Exom_core.Critical.critical;
    critical_executions = crit.Exom_core.Critical.executions;
    demand_verifications = report.Demand.verifications;
    demand_found = report.Demand.found;
  }

type mode_comparison = {
  edge_report : Demand.report;
  path_report : Demand.report;
}

(* Run the locator under both VerifyDep modes on fresh sessions. *)
let compare_verify_modes ?(max_iterations = 30) bench fault =
  let run mode =
    let faulty =
      Typecheck.parse_and_check (Bench_types.faulty_source bench fault)
    in
    let correct = Typecheck.parse_and_check bench.Bench_types.source in
    let input = fault.Bench_types.failing_input in
    let expected = Oracle.expected ~correct_prog:correct ~input in
    let s =
      Session.create ~prog:faulty ~input ~expected
        ~profile_inputs:bench.Bench_types.test_inputs ()
    in
    let oracle =
      Oracle.create ~faulty_trace:s.Session.trace ~correct_prog:correct ~input
    in
    let roots = Bench_types.root_sids bench fault faulty in
    let config =
      { Demand.default_config with verify_mode = mode; max_iterations }
    in
    Demand.locate ~config s ~oracle ~root_sids:roots
  in
  {
    edge_report = run Verify.Edge_approximation;
    path_report = run Verify.Path_exact;
  }
