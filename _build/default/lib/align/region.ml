module Trace = Exom_interp.Trace

(* The region tree of an execution (Definition 3 of the paper): each
   instance heads the region formed by itself and the instances
   (transitively) control dependent on it.  The tree is precisely the
   control-parent forest recorded in the trace, with a virtual root
   (index -1) above the top-level instances. *)
type t = {
  trace : Trace.t;
  children : int -> int list;
  enter : int array;  (* Euler-tour intervals for O(1) subtree tests *)
  leave : int array;
  position : int array;  (* index of an instance in its parent's child list *)
}

let root = -1

let build trace =
  let n = Trace.length trace in
  let children = Trace.children trace in
  let enter = Array.make n 0 in
  let leave = Array.make n 0 in
  let position = Array.make n 0 in
  let clock = ref 0 in
  (* Explicit stack: traces can nest deeply (long loops nest each
     iteration's predicate under the previous one). *)
  let stack = Stack.create () in
  List.iter (fun c -> Stack.push (`Enter c) stack)
    (List.rev (children root));
  while not (Stack.is_empty stack) do
    match Stack.pop stack with
    | `Enter idx ->
      enter.(idx) <- !clock;
      incr clock;
      Stack.push (`Leave idx) stack;
      List.iter (fun c -> Stack.push (`Enter c) stack)
        (List.rev (children idx))
    | `Leave idx ->
      leave.(idx) <- !clock;
      incr clock
  done;
  let fill_positions parent =
    List.iteri (fun i c -> position.(c) <- i) (children parent)
  in
  fill_positions root;
  for idx = 0 to n - 1 do
    fill_positions idx
  done;
  { trace; children; enter; leave; position }

let length t = Trace.length t.trace
let get t idx = Trace.get t.trace idx

let parent t idx =
  if idx < 0 then invalid_arg "Region.parent: root has no parent"
  else (Trace.get t.trace idx).Trace.parent

let children t idx = t.children idx

(* Is instance [u] inside the region headed by [r] (heads included)?
   The virtual root contains everything. *)
let in_region t ~u ~r =
  r = root || (t.enter.(r) <= t.enter.(u) && t.leave.(u) <= t.leave.(r))

let first_subregion t r =
  match t.children r with [] -> None | c :: _ -> Some c

let sibling t idx =
  let p = parent t idx in
  let sibs = t.children p in
  let pos = t.position.(idx) in
  List.nth_opt sibs (pos + 1)

let branch t idx = Trace.branch_of (Trace.get t.trace idx)
let sid t idx = (Trace.get t.trace idx).Trace.sid

(* Depth of an instance below the virtual root. *)
let depth t idx =
  let rec walk i acc = if i < 0 then acc else walk (parent t i) (acc + 1) in
  walk idx 0

(* Paper-style rendering: a region is its head's statement id followed
   by its subregions in brackets — "[6 7 8 [11 12] 6]". *)
let rec render_region ?(label = sid) t idx =
  let head = string_of_int (label t idx) in
  match t.children idx with
  | [] -> head
  | kids ->
    Printf.sprintf "[%s %s]" head
      (String.concat " " (List.map (render_region ~label t) kids))

let render_forest ?label t =
  String.concat ", " (List.map (render_region ?label t) (t.children root))
