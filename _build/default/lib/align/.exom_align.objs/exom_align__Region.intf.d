lib/align/region.mli: Exom_interp
