lib/align/align.ml: Exom_interp Region
