lib/align/region.ml: Array Exom_interp List Printf Stack String
