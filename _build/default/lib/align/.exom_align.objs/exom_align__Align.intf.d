lib/align/align.mli: Region
