(** Region trees (Definition 3 of the paper): an execution decomposes
    into nested regions, one per statement instance, each containing the
    instances control dependent on its head.  Built directly from the
    control parents recorded in the trace; a virtual {!root} (index -1)
    encloses the top-level instances. *)

type t

val root : int
val build : Exom_interp.Trace.t -> t
val length : t -> int
val get : t -> int -> Exom_interp.Trace.instance

(** Parent region head; raises [Invalid_argument] on the root. *)
val parent : t -> int -> int

val children : t -> int -> int list

(** O(1): is [u] within the region headed by [r] ([u = r] included)?
    The root contains everything. *)
val in_region : t -> u:int -> r:int -> bool

val first_subregion : t -> int -> int option

(** Next sibling within the same parent region, if any. *)
val sibling : t -> int -> int option

val branch : t -> int -> bool option
val sid : t -> int -> int
val depth : t -> int -> int

(** Paper-style textual rendering of one region / of the whole
    execution: "[6 7 8 [11 12] 6]".  [label] defaults to the statement
    id; pass e.g. a line-number lookup for source-level output. *)
val render_region : ?label:(t -> int -> int) -> t -> int -> string

val render_forest : ?label:(t -> int -> int) -> t -> string
