module Ast = Exom_lang.Ast

type t = {
  prog : Ast.program;
  alias : Alias.t;
  locs : Locs.t;
  cfgs : (string option, Cfg.t) Hashtbl.t;
  stmt_tbl : (int, Ast.stmt * string option) Hashtbl.t;
  cd_cache : (string option, Dominance.Iset.t array) Hashtbl.t;
}

let build prog =
  let alias = Alias.build prog in
  let locs = Locs.build prog alias in
  let cfgs = Hashtbl.create 16 in
  Hashtbl.replace cfgs None (Cfg.of_globals prog.Ast.globals);
  List.iter
    (fun fn -> Hashtbl.replace cfgs (Some fn.Ast.fname) (Cfg.of_func fn))
    prog.Ast.funcs;
  {
    prog;
    alias;
    locs;
    cfgs;
    stmt_tbl = Ast.stmt_table prog;
    cd_cache = Hashtbl.create 16;
  }

let program t = t.prog
let alias t = t.alias
let locs t = t.locs

let cfg_of t fname = Hashtbl.find t.cfgs fname

let stmt_of_sid t sid =
  match Hashtbl.find_opt t.stmt_tbl sid with
  | Some (s, _) -> s
  | None -> invalid_arg (Printf.sprintf "Proginfo.stmt_of_sid: unknown sid %d" sid)

let func_of_sid t sid =
  match Hashtbl.find_opt t.stmt_tbl sid with
  | Some (_, fname) -> fname
  | None -> invalid_arg (Printf.sprintf "Proginfo.func_of_sid: unknown sid %d" sid)

let cfg_of_sid t sid = cfg_of t (func_of_sid t sid)

let control_dep_sets t fname =
  match Hashtbl.find_opt t.cd_cache fname with
  | Some cd -> cd
  | None ->
    let cd = Dominance.control_dependence (cfg_of t fname) in
    Hashtbl.replace t.cd_cache fname cd;
    cd

(* Static (direct) control dependences of a statement, as predicate sids
   within the same function. *)
let control_deps t sid =
  let cfg = cfg_of_sid t sid in
  let cd = control_dep_sets t (func_of_sid t sid) in
  let node = Cfg.node_of cfg sid in
  Dominance.Iset.fold
    (fun p acc -> match Cfg.sid_at cfg p with Some s -> s :: acc | None -> acc)
    cd.(node) []

let is_predicate t sid = Ast.is_predicate (stmt_of_sid t sid)

let line_of_sid t sid = Exom_lang.Loc.line (stmt_of_sid t sid).Ast.sloc
