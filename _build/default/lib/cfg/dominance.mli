(** Dominance analyses: iterative (post)dominator sets and
    Ferrante-Ottenstein-Warren control dependence.

    Sizes here are per-function CFGs (hundreds of nodes at most), so the
    simple set-based iterative algorithms are ample. *)

module Iset : Set.S with type elt = int

(** [dominators ~nnodes ~root ~pred] returns reflexive dominator sets.
    Nodes unreachable from [root] keep the full node set. *)
val dominators :
  nnodes:int -> root:int -> pred:(int -> int list) -> Iset.t array

(** Postdominator sets of a CFG (dominators of the reversed graph rooted
    at the exit). *)
val postdominators : Cfg.t -> Iset.t array

(** [control_dependence cfg] maps each node to the set of predicate
    nodes it is directly control dependent on. *)
val control_dependence : Cfg.t -> Iset.t array

(** Direct and transitive control dependence. *)
val transitive_control_dependence : Cfg.t -> Iset.t array * Iset.t array
