(** Static support for potential dependences (relevant slicing,
    Definition 1 of the paper): condition (iv), "a different definition
    could potentially reach [u] if [p] were to evaluate differently".

    All queries are cached; the conservatism here (alias classes, callee
    summaries, no interprocedural kills) is what makes relevant slices
    over-sized — the behaviour the paper's Table 2 quantifies. *)

type t

(** [create ?observed info]: [observed] is an optional evidence filter
    (the paper's union dependence graph): a candidate definition
    statement then qualifies only if some test run witnessed one of its
    values reaching the use statement.  Without it, condition (iv) is
    purely static. *)
val create :
  ?observed:(def_sid:int -> use_sid:int -> bool) -> Proginfo.t -> t

(** [could_reach_differently t ~pred_sid ~taken ~use_sid ~loc]: given
    that predicate [pred_sid] evaluated to [taken], could a different
    definition of [loc] reach [use_sid] along the untaken branch? *)
val could_reach_differently :
  t -> pred_sid:int -> taken:bool -> use_sid:int -> loc:Locs.loc -> bool
