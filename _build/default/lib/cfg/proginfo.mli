(** One-stop static program information: CFGs for the global initializer
    sequence and every function, alias classes, def/use locations, and
    cached static control dependence. *)

type t

val build : Exom_lang.Ast.program -> t
val program : t -> Exom_lang.Ast.program
val alias : t -> Alias.t
val locs : t -> Locs.t

(** CFG of a function ([None] = global initializers). *)
val cfg_of : t -> string option -> Cfg.t

(** These raise [Invalid_argument] on unknown sids. *)
val stmt_of_sid : t -> int -> Exom_lang.Ast.stmt

val func_of_sid : t -> int -> string option
val cfg_of_sid : t -> int -> Cfg.t

(** Direct static control dependences of a statement (predicate sids of
    the same function). *)
val control_deps : t -> int -> int list

val is_predicate : t -> int -> bool
val line_of_sid : t -> int -> int
