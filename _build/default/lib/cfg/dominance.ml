module Iset = Set.Make (Int)

(* Iterative dominator computation over an arbitrary successor function.
   [doms.(n)] is the set of nodes dominating [n] (reflexive).  Nodes
   unreachable from the root keep the full set, the conventional
   treatment that makes control-dependence computation robust in the
   presence of infinite loops. *)
let dominators ~nnodes ~root ~pred =
  let full = List.init nnodes Fun.id |> Iset.of_list in
  let doms = Array.make nnodes full in
  doms.(root) <- Iset.singleton root;
  let changed = ref true in
  while !changed do
    changed := false;
    for n = 0 to nnodes - 1 do
      if n <> root then begin
        let meet =
          List.fold_left
            (fun acc p -> Iset.inter acc doms.(p))
            full (pred n)
        in
        let next = Iset.add n meet in
        if not (Iset.equal next doms.(n)) then begin
          doms.(n) <- next;
          changed := true
        end
      end
    done
  done;
  doms

let postdominators (cfg : Cfg.t) =
  let pred n = List.map fst cfg.Cfg.succ.(n) in
  dominators ~nnodes:cfg.Cfg.nnodes ~root:cfg.Cfg.exit_ ~pred

(* Ferrante-Ottenstein-Warren control dependence: node [n] is control
   dependent on predicate [p] iff [p] has a successor [s] with [n]
   post-dominating [s] (possibly n = s), and [n] does not strictly
   post-dominate [p]. *)
let control_dependence (cfg : Cfg.t) =
  let pdoms = postdominators cfg in
  let deps = Array.make cfg.Cfg.nnodes Iset.empty in
  (* deps.(n) = set of predicate nodes n is control dependent on *)
  Cfg.iter_nodes
    (fun p ->
      match cfg.Cfg.succ.(p) with
      | [] | [ _ ] -> ()
      | succs ->
        List.iter
          (fun (s, _) ->
            (* every postdominator of s that does not strictly
               postdominate p is control dependent on p *)
            Iset.iter
              (fun n ->
                let strictly_postdominates_p =
                  n <> p && Iset.mem n pdoms.(p)
                in
                if not strictly_postdominates_p then
                  deps.(n) <- Iset.add p deps.(n))
              pdoms.(s))
          succs)
    cfg;
  deps

(* Fixpoint closure; handles self- and mutual dependences (a loop
   predicate is control dependent on itself). *)
let transitive_control_dependence cfg =
  let direct = control_dependence cfg in
  let n = Array.length direct in
  let result = Array.map Fun.id direct in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 0 to n - 1 do
      let extended =
        Iset.fold
          (fun p acc -> Iset.union acc result.(p))
          result.(i) result.(i)
      in
      if not (Iset.equal extended result.(i)) then begin
        result.(i) <- extended;
        changed := true
      end
    done
  done;
  (direct, result)
