(** Flow-insensitive alias classes for array variables.

    The paper's potential-dependence analysis needs points-to facts for
    memory writes ("condition (iv) ... static points-to analysis has to
    be conducted"); here arrays are the only aliasable objects, and a
    unification-based analysis (array copies and parameter bindings
    merge handles) yields the alias classes used as static memory
    locations.  Deliberately conservative: a class merges all arrays
    that ever flow through a common handle. *)

type t

val build : Exom_lang.Ast.program -> t

(** [class_of t ~fname x] is the alias class of array variable [x] as
    seen from [fname]; [None] when [x] is not an array variable. *)
val class_of : t -> fname:string option -> string -> int option

val nclasses : t -> int
val scopes : t -> Scopes.t
