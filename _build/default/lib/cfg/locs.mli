(** Static memory locations and per-statement def/use sets.

    A location is either a scoped variable or an array alias class.
    Def/use sets include the transitive effects of calls (a statement
    that calls [f] inherits [f]'s global/array summary), computed by a
    fixpoint over the call graph — this is the conservatism that makes
    relevant slices large, exactly as the paper describes. *)

type loc =
  | Lvar of string option * string
      (** defining scope ([None] = global) and name *)
  | Larr of int  (** array alias class *)

val loc_to_string : loc -> string

module Lset : Set.S with type elt = loc

type t

val build : Exom_lang.Ast.program -> Alias.t -> t

(** Full def/use sets by statement id (callee summaries included). *)
val defs : t -> int -> Lset.t

val uses : t -> int -> Lset.t
val def_summary : t -> string -> Lset.t
val use_summary : t -> string -> Lset.t
val func_of_sid : t -> int -> string option option
val defines : t -> int -> loc -> bool
val loc_of_var : t -> fname:string option -> string -> loc

(** The array classes a statement reads (used to map dynamic
    array-element cells back to static locations). *)
val array_uses : t -> int -> loc list
