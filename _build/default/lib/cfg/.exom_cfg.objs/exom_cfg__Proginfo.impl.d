lib/cfg/proginfo.ml: Alias Array Cfg Dominance Exom_lang Hashtbl List Locs Printf
