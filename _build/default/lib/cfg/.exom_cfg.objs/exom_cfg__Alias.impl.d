lib/cfg/alias.ml: Exom_lang Exom_util Hashtbl List Scopes
