lib/cfg/potential.ml: Cfg Hashtbl Int List Locs Proginfo Set
