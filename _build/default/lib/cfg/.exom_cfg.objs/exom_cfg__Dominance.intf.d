lib/cfg/dominance.mli: Cfg Set
