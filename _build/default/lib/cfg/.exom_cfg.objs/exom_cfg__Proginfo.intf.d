lib/cfg/proginfo.mli: Alias Cfg Exom_lang Locs
