lib/cfg/locs.mli: Alias Exom_lang Set
