lib/cfg/cfg.mli: Exom_lang Fmt Hashtbl
