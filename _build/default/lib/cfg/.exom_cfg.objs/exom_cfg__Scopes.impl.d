lib/cfg/scopes.ml: Exom_lang List Map Option String
