lib/cfg/cfg.ml: Array Exom_lang Fmt Hashtbl List Option Printf String
