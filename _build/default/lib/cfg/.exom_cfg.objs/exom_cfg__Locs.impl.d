lib/cfg/locs.ml: Alias Exom_lang Hashtbl List Option Printf Scopes Set
