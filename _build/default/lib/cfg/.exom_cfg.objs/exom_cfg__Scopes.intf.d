lib/cfg/scopes.mli: Exom_lang
