lib/cfg/potential.mli: Locs Proginfo
