lib/cfg/dominance.ml: Array Cfg Fun Int List Set
