lib/cfg/alias.mli: Exom_lang Scopes
