(** Per-function control-flow graphs over MCL statements.

    Node 0 is the entry, node 1 the exit; every statement (including
    [if]/[while] predicates) gets one node.  Predicate out-edges are
    labelled [Lthen]/[Lelse] so the analyses can ask for the successor of
    the *untaken* branch — condition (iv) of the paper's Definition 1. *)

type label = Lseq | Lthen | Lelse

type t = {
  fname : string option;  (** [None] for the global-initializer CFG *)
  entry : int;
  exit_ : int;
  nnodes : int;
  stmt_of : Exom_lang.Ast.stmt option array;
  succ : (int * label) list array;
  pred : (int * label) list array;
  node_of_sid : (int, int) Hashtbl.t;
}

val build : fname:string option -> Exom_lang.Ast.block -> t
val of_func : Exom_lang.Ast.func -> t
val of_globals : Exom_lang.Ast.block -> t

(** Raises [Invalid_argument] if the statement is not in this CFG. *)
val node_of : t -> int -> int

val node_of_opt : t -> int -> int option
val mem_sid : t -> int -> bool
val stmt_at : t -> int -> Exom_lang.Ast.stmt option
val sid_at : t -> int -> int option
val successors : t -> int -> (int * label) list
val predecessors : t -> int -> (int * label) list

(** [branch_successor t n b] is the node control reaches when predicate
    [n] evaluates to [b]; [None] if [n] is not a predicate node. *)
val branch_successor : t -> int -> bool -> int option

val is_predicate_node : t -> int -> bool
val iter_nodes : (int -> unit) -> t -> unit
val pp : t Fmt.t
