(** Static name resolution: maps a name as seen from a function (or the
    global scope) to its defining scope and type.  MCL forbids
    shadowing, so resolution is a two-level lookup. *)

type t

val build : Exom_lang.Ast.program -> t

(** [resolve t ~fname x] is [Some f] when [x] is a local (or parameter)
    of [f], [None] when it refers to a global. *)
val resolve : t -> fname:string option -> string -> string option

val typ_of : t -> fname:string option -> string -> Exom_lang.Ast.typ option
val is_array : t -> fname:string option -> string -> bool
