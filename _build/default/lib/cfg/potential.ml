module Iset = Set.Make (Int)

(* Condition (iv) of the paper's Definition 1: given that predicate [p]
   evaluated to [taken], could a *different* definition of location [loc]
   reach use [u] if [p] had evaluated to [not taken]?

   Checked statically on the CFG of [p]'s function.  A candidate
   definition node D of [loc] qualifies when:
   - D is reachable from the untaken successor of [p] but NOT from the
     taken one, along paths that do not re-traverse [p] itself (a
     definition reaching the use on both branches is not a *different*
     definition — e.g. the paper's S6, which executes whichever way S4
     goes, does not put S4 in PD of S10; but paths that re-enter the
     predicate belong to *later* instances of it, so they must not
     disqualify a loop-guarded definition);
   - same function only: some successor of D starts a
     [loc]-definition-clear path to [u] (otherwise the definition is
     killed before the use, the paper's condition-(iii) illustration);
     across functions kill information is not tracked (conservative).

   Still deliberately conservative overall (calls inherit callee def
   summaries, array classes collapse all elements): the source of the
   over-approximation that inflates relevant slices in Table 2. *)

type t = {
  info : Proginfo.t;
  observed : (def_sid:int -> use_sid:int -> bool) option;
      (* evidence filter, e.g. the union dependence graph: a candidate
         definition qualifies only if some test run witnessed its value
         reaching the use statement *)
  reach_cache : (string option * int * int, Iset.t) Hashtbl.t;
      (* (function, start, avoided predicate) -> forward-reachable nodes *)
  clear_cache : (string option * int * Locs.loc, Iset.t) Hashtbl.t;
      (* (function, use node, loc) -> backward def-clear sources *)
  verdict_cache : (int * bool * int * Locs.loc, bool) Hashtbl.t;
}

let create ?observed info =
  {
    info;
    observed;
    reach_cache = Hashtbl.create 64;
    clear_cache = Hashtbl.create 64;
    verdict_cache = Hashtbl.create 256;
  }

let node_defines t cfg node loc =
  match Cfg.sid_at cfg node with
  | Some sid -> Locs.defines (Proginfo.locs t.info) sid loc
  | None -> false

(* Forward reachability that never traverses *through* [avoid] (the
   queried predicate): nodes only reachable by re-entering the predicate
   belong to later dynamic instances of it. *)
let forward_reachable t cfg fname start ~avoid =
  match Hashtbl.find_opt t.reach_cache (fname, start, avoid) with
  | Some r -> r
  | None ->
    let visited = ref Iset.empty in
    let rec visit n =
      if not (Iset.mem n !visited) then begin
        visited := Iset.add n !visited;
        if n <> avoid then
          List.iter (fun (s, _) -> visit s) (Cfg.successors cfg n)
      end
    in
    visit start;
    Hashtbl.replace t.reach_cache (fname, start, avoid) !visited;
    !visited

(* Nodes [m] such that there is a path m => use_node whose interior
   (including [m] itself, excluding [use_node]) defines [loc] nowhere.
   [use_node] is a member.  A definition D reaches the use def-clear iff
   one of D's successors is in this set. *)
let clear_sources t cfg fname use_node loc =
  match Hashtbl.find_opt t.clear_cache (fname, use_node, loc) with
  | Some r -> r
  | None ->
    let result = ref (Iset.singleton use_node) in
    let rec visit n =
      List.iter
        (fun (p, _) ->
          if (not (Iset.mem p !result)) && not (node_defines t cfg p loc)
          then begin
            result := Iset.add p !result;
            visit p
          end)
        (Cfg.predecessors cfg n)
    in
    visit use_node;
    Hashtbl.replace t.clear_cache (fname, use_node, loc) !result;
    !result

let could_reach_differently t ~pred_sid ~taken ~use_sid ~loc =
  let key = (pred_sid, taken, use_sid, loc) in
  match Hashtbl.find_opt t.verdict_cache key with
  | Some v -> v
  | None ->
    let pfname = Proginfo.func_of_sid t.info pred_sid in
    let ufname = Proginfo.func_of_sid t.info use_sid in
    let cfg = Proginfo.cfg_of t.info pfname in
    let pnode = Cfg.node_of cfg pred_sid in
    let verdict =
      match
        ( Cfg.branch_successor cfg pnode (not taken),
          Cfg.branch_successor cfg pnode taken )
      with
      | None, _ | _, None -> false
      | Some nt_succ, Some t_succ ->
        let reach_nt = forward_reachable t cfg pfname nt_succ ~avoid:pnode in
        let reach_t = forward_reachable t cfg pfname t_succ ~avoid:pnode in
        let witnessed d =
          match t.observed with
          | None -> true
          | Some f -> (
            match Cfg.sid_at cfg d with
            | Some def_sid -> f ~def_sid ~use_sid
            | None -> false)
        in
        let candidate_defs =
          Iset.filter
            (fun d ->
              (not (Iset.mem d reach_t))
              && node_defines t cfg d loc
              && witnessed d)
            reach_nt
        in
        if Iset.is_empty candidate_defs then false
        else if pfname <> ufname then true
        else begin
          let ucfg_node = Cfg.node_of cfg use_sid in
          let clear = clear_sources t cfg pfname ucfg_node loc in
          Iset.exists
            (fun d ->
              List.exists (fun (s, _) -> Iset.mem s clear) (Cfg.successors cfg d))
            candidate_defs
        end
    in
    Hashtbl.replace t.verdict_cache key verdict;
    verdict
