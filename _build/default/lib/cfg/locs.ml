module Ast = Exom_lang.Ast
module Builtin = Exom_lang.Builtin

type loc =
  | Lvar of string option * string  (* defining scope, name *)
  | Larr of int  (* array alias class *)

let loc_to_string = function
  | Lvar (None, x) -> x
  | Lvar (Some f, x) -> Printf.sprintf "%s.%s" f x
  | Larr c -> Printf.sprintf "arr-class#%d" c

module Lset = Set.Make (struct
  type t = loc

  let compare = compare
end)

type t = {
  alias : Alias.t;
  scopes : Scopes.t;
  func_of_sid : (int, string option) Hashtbl.t;
  defs : (int, Lset.t) Hashtbl.t;
  uses : (int, Lset.t) Hashtbl.t;
  def_sum : (string, Lset.t) Hashtbl.t;
  use_sum : (string, Lset.t) Hashtbl.t;
}

let loc_of_var t ~fname x = Lvar (Scopes.resolve t.scopes ~fname x, x)

let arr_loc t ~fname x =
  match Alias.class_of t.alias ~fname x with
  | Some c -> Some (Larr c)
  | None -> None

(* Direct uses of an expression: variables read, array classes indexed,
   plus the set of user functions called (for summary expansion). *)
let rec expr_effects t ~fname expr (uses, calls) =
  match expr.Ast.edesc with
  | Ast.Eint _ | Ast.Ebool _ -> (uses, calls)
  | Ast.Evar x -> (Lset.add (loc_of_var t ~fname x) uses, calls)
  | Ast.Eindex (a, e) ->
    let uses = Lset.add (loc_of_var t ~fname a) uses in
    let uses =
      match arr_loc t ~fname a with
      | Some l -> Lset.add l uses
      | None -> uses
    in
    expr_effects t ~fname e (uses, calls)
  | Ast.Eunop (_, e) -> expr_effects t ~fname e (uses, calls)
  | Ast.Ebinop (_, e1, e2) ->
    expr_effects t ~fname e2 (expr_effects t ~fname e1 (uses, calls))
  | Ast.Ecall (f, args) ->
    let acc = List.fold_left (fun acc a -> expr_effects t ~fname a acc) (uses, calls) args in
    let uses, calls = acc in
    (* [len] depends on the allocation of its argument's class *)
    let uses =
      match (Builtin.of_name f, args) with
      | Some Builtin.Len, [ { Ast.edesc = Ast.Evar a; _ } ] -> (
        match arr_loc t ~fname a with
        | Some l -> Lset.add l uses
        | None -> uses)
      | _ -> uses
    in
    let calls = if Builtin.of_name f = None then f :: calls else calls in
    (uses, calls)

(* Direct defs/uses of one statement, without callee summaries. *)
let direct_effects t ~fname stmt =
  let empty = (Lset.empty, []) in
  let of_expr e = expr_effects t ~fname e empty in
  let of_expr_opt = function Some e -> of_expr e | None -> empty in
  match stmt.Ast.skind with
  | Ast.Sdecl (_, x, init) ->
    let uses, calls = of_expr_opt init in
    (Lset.singleton (loc_of_var t ~fname x), uses, calls)
  | Ast.Sassign (x, e) ->
    let uses, calls = of_expr e in
    (Lset.singleton (loc_of_var t ~fname x), uses, calls)
  | Ast.Sstore (a, i, e) ->
    let acc = expr_effects t ~fname i empty in
    let uses, calls = expr_effects t ~fname e acc in
    let uses = Lset.add (loc_of_var t ~fname a) uses in
    let defs =
      match arr_loc t ~fname a with
      | Some l -> Lset.singleton l
      | None -> Lset.empty
    in
    (defs, uses, calls)
  | Ast.Sif (c, _, _) | Ast.Swhile (c, _) ->
    let uses, calls = of_expr c in
    (Lset.empty, uses, calls)
  | Ast.Sreturn e_opt ->
    let uses, calls = of_expr_opt e_opt in
    (Lset.empty, uses, calls)
  | Ast.Sexpr e ->
    let uses, calls = of_expr e in
    (Lset.empty, uses, calls)
  | Ast.Sbreak | Ast.Scontinue -> (Lset.empty, Lset.empty, [])

(* Only globals and array classes survive into a function's summary. *)
let summarizable = function
  | Lvar (None, _) | Larr _ -> true
  | Lvar (Some _, _) -> false

let build prog alias =
  let scopes = Alias.scopes alias in
  let func_of_sid = Hashtbl.create 64 in
  List.iter
    (fun s -> Hashtbl.replace func_of_sid s.Ast.sid None)
    prog.Ast.globals;
  List.iter
    (fun fn ->
      Ast.iter_stmts
        (fun s -> Hashtbl.replace func_of_sid s.Ast.sid (Some fn.Ast.fname))
        fn.Ast.fbody)
    prog.Ast.funcs;
  let t =
    {
      alias;
      scopes;
      func_of_sid;
      defs = Hashtbl.create 64;
      uses = Hashtbl.create 64;
      def_sum = Hashtbl.create 16;
      use_sum = Hashtbl.create 16;
    }
  in
  (* Direct per-statement effects and per-function call lists. *)
  let stmt_calls = Hashtbl.create 64 in
  let fn_direct = Hashtbl.create 16 in
  let record_stmt ~fname s =
    let defs, uses, calls = direct_effects t ~fname s in
    Hashtbl.replace t.defs s.Ast.sid defs;
    Hashtbl.replace t.uses s.Ast.sid uses;
    Hashtbl.replace stmt_calls s.Ast.sid calls
  in
  List.iter (record_stmt ~fname:None) prog.Ast.globals;
  List.iter
    (fun fn ->
      let fname = Some fn.Ast.fname in
      let fdefs = ref Lset.empty and fuses = ref Lset.empty and fcalls = ref [] in
      Ast.iter_stmts
        (fun s ->
          record_stmt ~fname s;
          fdefs := Lset.union !fdefs (Lset.filter summarizable (Hashtbl.find t.defs s.Ast.sid));
          fuses := Lset.union !fuses (Lset.filter summarizable (Hashtbl.find t.uses s.Ast.sid));
          fcalls := Hashtbl.find stmt_calls s.Ast.sid @ !fcalls)
        fn.Ast.fbody;
      Hashtbl.replace fn_direct fn.Ast.fname (!fdefs, !fuses, List.sort_uniq compare !fcalls))
    prog.Ast.funcs;
  (* Transitive summaries: fixpoint over the (possibly cyclic) call graph. *)
  List.iter
    (fun fn ->
      let d, u, _ = Hashtbl.find fn_direct fn.Ast.fname in
      Hashtbl.replace t.def_sum fn.Ast.fname d;
      Hashtbl.replace t.use_sum fn.Ast.fname u)
    prog.Ast.funcs;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun fn ->
        let _, _, calls = Hashtbl.find fn_direct fn.Ast.fname in
        let grow tbl =
          let cur = Hashtbl.find tbl fn.Ast.fname in
          let ext =
            List.fold_left
              (fun acc g ->
                match Hashtbl.find_opt tbl g with
                | Some s -> Lset.union acc s
                | None -> acc)
              cur calls
          in
          if not (Lset.equal ext cur) then begin
            Hashtbl.replace tbl fn.Ast.fname ext;
            changed := true
          end
        in
        grow t.def_sum;
        grow t.use_sum)
      prog.Ast.funcs
  done;
  (* Fold callee summaries into per-statement effects. *)
  Hashtbl.iter
    (fun sid calls ->
      let fold tbl sum_tbl =
        let cur = Hashtbl.find tbl sid in
        let ext =
          List.fold_left
            (fun acc g ->
              match Hashtbl.find_opt sum_tbl g with
              | Some s -> Lset.union acc s
              | None -> acc)
            cur calls
        in
        Hashtbl.replace tbl sid ext
      in
      fold t.defs t.def_sum;
      fold t.uses t.use_sum)
    stmt_calls;
  t

let defs t sid = Option.value ~default:Lset.empty (Hashtbl.find_opt t.defs sid)
let uses t sid = Option.value ~default:Lset.empty (Hashtbl.find_opt t.uses sid)

let def_summary t fname =
  Option.value ~default:Lset.empty (Hashtbl.find_opt t.def_sum fname)

let use_summary t fname =
  Option.value ~default:Lset.empty (Hashtbl.find_opt t.use_sum fname)

let func_of_sid t sid = Hashtbl.find_opt t.func_of_sid sid

let defines t sid loc = Lset.mem loc (defs t sid)

let array_uses t sid =
  Lset.fold
    (fun l acc -> match l with Larr _ -> l :: acc | Lvar _ -> acc)
    (uses t sid) []
