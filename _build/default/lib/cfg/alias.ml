module Ast = Exom_lang.Ast
module Uf = Exom_util.Union_find

(* An array handle: a variable of type int[] identified by its defining
   scope.  Flow-insensitive unification: any two handles that may refer
   to the same array (through copy assignment or parameter passing) land
   in the same class. *)
type handle = string option * string

type t = {
  scopes : Scopes.t;
  uf : handle Uf.t;
  class_ids : (handle, int) Hashtbl.t;
  nclasses : int;
}

let handle_of scopes ~fname x = (Scopes.resolve scopes ~fname x, x)

(* Collect every array-typed (handle1, handle2) unification implied by an
   expression appearing in function [fname]: calls unify arguments with
   parameters. *)
let rec unify_expr scopes uf funcs ~fname expr =
  match expr.Ast.edesc with
  | Ast.Eint _ | Ast.Ebool _ | Ast.Evar _ -> ()
  | Ast.Eindex (_, e) | Ast.Eunop (_, e) -> unify_expr scopes uf funcs ~fname e
  | Ast.Ebinop (_, e1, e2) ->
    unify_expr scopes uf funcs ~fname e1;
    unify_expr scopes uf funcs ~fname e2;
  | Ast.Ecall (f, args) ->
    List.iter (unify_expr scopes uf funcs ~fname) args;
    (match Hashtbl.find_opt funcs f with
    | None -> ()  (* builtin *)
    | Some fn ->
      List.iter2
        (fun (ptyp, pname) arg ->
          match (ptyp, arg.Ast.edesc) with
          | Ast.Tarray, Ast.Evar b ->
            Uf.union uf (Some f, pname) (handle_of scopes ~fname b)
          | _ -> ())
        fn.Ast.fparams args)

let unify_stmt scopes uf funcs ~fname stmt =
  let unify_assign x rhs =
    if Scopes.is_array scopes ~fname x then
      match rhs.Ast.edesc with
      | Ast.Evar b ->
        Uf.union uf (handle_of scopes ~fname x) (handle_of scopes ~fname b)
      | _ -> ()
  in
  match stmt.Ast.skind with
  | Ast.Sdecl (Ast.Tarray, x, Some rhs) ->
    unify_expr scopes uf funcs ~fname rhs;
    unify_assign x rhs
  | Ast.Sdecl (_, _, Some e) -> unify_expr scopes uf funcs ~fname e
  | Ast.Sdecl (_, _, None) -> ()
  | Ast.Sassign (x, rhs) ->
    unify_expr scopes uf funcs ~fname rhs;
    unify_assign x rhs
  | Ast.Sstore (_, i, e) ->
    unify_expr scopes uf funcs ~fname i;
    unify_expr scopes uf funcs ~fname e
  | Ast.Sif (c, _, _) | Ast.Swhile (c, _) -> unify_expr scopes uf funcs ~fname c
  | Ast.Sreturn (Some e) | Ast.Sexpr e -> unify_expr scopes uf funcs ~fname e
  | Ast.Sreturn None | Ast.Sbreak | Ast.Scontinue -> ()

let array_handles scopes prog =
  let handles = ref [] in
  let add fname x typ = if typ = Ast.Tarray then handles := (fname, x) :: !handles in
  List.iter
    (fun s ->
      match s.Ast.skind with
      | Ast.Sdecl (typ, x, _) -> add None x typ
      | _ -> ())
    prog.Ast.globals;
  List.iter
    (fun fn ->
      let fname = Some fn.Ast.fname in
      List.iter (fun (typ, x) -> add fname x typ) fn.Ast.fparams;
      Ast.iter_stmts
        (fun s ->
          match s.Ast.skind with
          | Ast.Sdecl (typ, x, _) -> add fname x typ
          | _ -> ())
        fn.Ast.fbody)
    prog.Ast.funcs;
  ignore scopes;
  !handles

let build prog =
  let scopes = Scopes.build prog in
  let uf = Uf.create () in
  let funcs = Hashtbl.create 16 in
  List.iter (fun fn -> Hashtbl.replace funcs fn.Ast.fname fn) prog.Ast.funcs;
  List.iter (unify_stmt scopes uf funcs ~fname:None) prog.Ast.globals;
  List.iter
    (fun fn ->
      Ast.iter_stmts
        (unify_stmt scopes uf funcs ~fname:(Some fn.Ast.fname))
        fn.Ast.fbody)
    prog.Ast.funcs;
  let class_ids = Hashtbl.create 16 in
  let next = ref 0 in
  List.iter
    (fun h ->
      let rep = Uf.find uf h in
      if not (Hashtbl.mem class_ids rep) then begin
        Hashtbl.replace class_ids rep !next;
        incr next
      end)
    (array_handles scopes prog);
  { scopes; uf; class_ids; nclasses = !next }

let class_of t ~fname x =
  if Scopes.is_array t.scopes ~fname x then
    Hashtbl.find_opt t.class_ids (Uf.find t.uf (handle_of t.scopes ~fname x))
  else None

let nclasses t = t.nclasses
let scopes t = t.scopes
