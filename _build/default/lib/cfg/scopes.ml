module Ast = Exom_lang.Ast
module Smap = Map.Make (String)

type t = {
  globals : Ast.typ Smap.t;
  locals : Ast.typ Smap.t Smap.t;  (* function name -> local name -> type *)
}

let build prog =
  let globals =
    List.fold_left
      (fun acc stmt ->
        match stmt.Ast.skind with
        | Ast.Sdecl (typ, x, _) -> Smap.add x typ acc
        | _ -> acc)
      Smap.empty prog.Ast.globals
  in
  let locals_of fn =
    let from_params =
      List.fold_left
        (fun acc (typ, x) -> Smap.add x typ acc)
        Smap.empty fn.Ast.fparams
    in
    let acc = ref from_params in
    Ast.iter_stmts
      (fun s ->
        match s.Ast.skind with
        | Ast.Sdecl (typ, x, _) -> acc := Smap.add x typ !acc
        | _ -> ())
      fn.Ast.fbody;
    !acc
  in
  let locals =
    List.fold_left
      (fun acc fn -> Smap.add fn.Ast.fname (locals_of fn) acc)
      Smap.empty prog.Ast.funcs
  in
  { globals; locals }

(* Resolve name [x] as seen from [fname] ([None] = global scope) to its
   defining scope: [None] for a global, [Some f] for a local of [f]. *)
let resolve t ~fname x =
  match fname with
  | Some f when Smap.mem x (Option.value ~default:Smap.empty (Smap.find_opt f t.locals))
    -> Some f
  | _ -> None

let typ_of t ~fname x =
  match resolve t ~fname x with
  | Some f -> Smap.find_opt x (Smap.find f t.locals)
  | None -> Smap.find_opt x t.globals

let is_array t ~fname x = typ_of t ~fname x = Some Ast.Tarray
