module Ast = Exom_lang.Ast

type label = Lseq | Lthen | Lelse

type t = {
  fname : string option;
  entry : int;
  exit_ : int;
  nnodes : int;
  stmt_of : Ast.stmt option array;
  succ : (int * label) list array;
  pred : (int * label) list array;
  node_of_sid : (int, int) Hashtbl.t;
}

let node_of t sid =
  match Hashtbl.find_opt t.node_of_sid sid with
  | Some n -> n
  | None -> invalid_arg (Printf.sprintf "Cfg.node_of: sid %d not in this CFG" sid)

let node_of_opt t sid = Hashtbl.find_opt t.node_of_sid sid

let stmt_at t node = t.stmt_of.(node)

let sid_at t node =
  match t.stmt_of.(node) with Some s -> Some s.Ast.sid | None -> None

let mem_sid t sid = Hashtbl.mem t.node_of_sid sid

let build ~fname block =
  let node_of_sid = Hashtbl.create 32 in
  let count = ref 2 in
  Ast.iter_stmts
    (fun s ->
      Hashtbl.replace node_of_sid s.Ast.sid !count;
      incr count)
    block;
  let nnodes = !count in
  let entry = 0 and exit_ = 1 in
  let stmt_of = Array.make nnodes None in
  Ast.iter_stmts
    (fun s -> stmt_of.(Hashtbl.find node_of_sid s.Ast.sid) <- Some s)
    block;
  let succ = Array.make nnodes [] in
  let pred = Array.make nnodes [] in
  let add_edge src dst label =
    succ.(src) <- (dst, label) :: succ.(src);
    pred.(dst) <- (src, label) :: pred.(dst)
  in
  (* Wire statements back to front so each statement knows its successor.
     [brk] and [cont] are the targets of break/continue in the current
     loop ([None] outside loops; the typechecker guarantees they are set
     when needed). *)
  let rec wire_block block ~follow ~brk ~cont =
    List.fold_right
      (fun stmt next -> wire_stmt stmt ~follow:next ~brk ~cont)
      block follow
  and wire_stmt stmt ~follow ~brk ~cont =
    let n = Hashtbl.find node_of_sid stmt.Ast.sid in
    (match stmt.Ast.skind with
    | Ast.Sdecl _ | Ast.Sassign _ | Ast.Sstore _ | Ast.Sexpr _ ->
      add_edge n follow Lseq
    | Ast.Sreturn _ -> add_edge n exit_ Lseq
    | Ast.Sbreak -> add_edge n (Option.get brk) Lseq
    | Ast.Scontinue -> add_edge n (Option.get cont) Lseq
    | Ast.Sif (_, then_blk, else_blk) ->
      let t1 = wire_block then_blk ~follow ~brk ~cont in
      let t2 = wire_block else_blk ~follow ~brk ~cont in
      add_edge n t1 Lthen;
      add_edge n t2 Lelse
    | Ast.Swhile (_, body) ->
      let body_first =
        wire_block body ~follow:n ~brk:(Some follow) ~cont:(Some n)
      in
      add_edge n body_first Lthen;
      add_edge n follow Lelse);
    n
  in
  let first = wire_block block ~follow:exit_ ~brk:None ~cont:None in
  add_edge entry first Lseq;
  { fname; entry; exit_; nnodes; stmt_of; succ; pred; node_of_sid }

let of_func fn = build ~fname:(Some fn.Ast.fname) fn.Ast.fbody
let of_globals globals = build ~fname:None globals

let successors t n = t.succ.(n)
let predecessors t n = t.pred.(n)

(* The successor reached when predicate [n] evaluates to [branch]. *)
let branch_successor t n branch =
  let want = if branch then Lthen else Lelse in
  List.find_map (fun (s, l) -> if l = want then Some s else None) t.succ.(n)

let is_predicate_node t n =
  match t.stmt_of.(n) with
  | Some s -> Ast.is_predicate s
  | None -> false

let iter_nodes f t =
  for n = 0 to t.nnodes - 1 do
    f n
  done

let pp ppf t =
  let name = Option.value ~default:"<globals>" t.fname in
  Fmt.pf ppf "cfg %s (%d nodes)@." name t.nnodes;
  iter_nodes
    (fun n ->
      let desc =
        if n = t.entry then "entry"
        else if n = t.exit_ then "exit"
        else
          match t.stmt_of.(n) with
          | Some s -> Printf.sprintf "s%d" s.Ast.sid
          | None -> "?"
      in
      let succs =
        List.map
          (fun (s, l) ->
            let tag =
              match l with Lseq -> "" | Lthen -> "T:" | Lelse -> "F:"
            in
            Printf.sprintf "%s%d" tag s)
          t.succ.(n)
      in
      Fmt.pf ppf "  %d(%s) -> %s@." n desc (String.concat ", " succs))
    t
