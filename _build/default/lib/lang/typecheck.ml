module Smap = Map.Make (String)

type fsig = { psig : Ast.typ list; rsig : Ast.typ }

type env = {
  vars : Ast.typ Smap.t;  (* globals + locals in scope *)
  funcs : fsig Smap.t;
  ret : Ast.typ;  (* return type of the enclosing function *)
  in_loop : bool;
}

let lookup_var env loc x =
  match Smap.find_opt x env.vars with
  | Some t -> t
  | None -> Loc.error loc "unbound variable '%s'" x

let check_num_args loc f expected got =
  if expected <> got then
    Loc.error loc "function '%s' expects %d argument(s) but got %d" f expected
      got

let rec type_of_expr env expr =
  let loc = expr.Ast.eloc in
  match expr.Ast.edesc with
  | Ast.Eint _ -> Ast.Tint
  | Ast.Ebool _ -> Ast.Tbool
  | Ast.Evar x -> lookup_var env loc x
  | Ast.Eindex (a, idx) ->
    (match lookup_var env loc a with
    | Ast.Tarray -> ()
    | t -> Loc.error loc "'%s' has type %s, expected int[]" a (Ast.typ_to_string t));
    check_expr env idx Ast.Tint;
    Ast.Tint
  | Ast.Eunop (Ast.Neg, e) ->
    check_expr env e Ast.Tint;
    Ast.Tint
  | Ast.Eunop (Ast.Not, e) ->
    check_expr env e Ast.Tbool;
    Ast.Tbool
  | Ast.Ebinop (op, e1, e2) -> (
    match op with
    | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod ->
      check_expr env e1 Ast.Tint;
      check_expr env e2 Ast.Tint;
      Ast.Tint
    | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
      check_expr env e1 Ast.Tint;
      check_expr env e2 Ast.Tint;
      Ast.Tbool
    | Ast.Eq | Ast.Ne ->
      let t1 = type_of_expr env e1 in
      (match t1 with
      | Ast.Tint | Ast.Tbool -> ()
      | t ->
        Loc.error loc "values of type %s cannot be compared" (Ast.typ_to_string t));
      check_expr env e2 t1;
      Ast.Tbool
    | Ast.And | Ast.Or ->
      check_expr env e1 Ast.Tbool;
      check_expr env e2 Ast.Tbool;
      Ast.Tbool)
  | Ast.Ecall (f, args) -> (
    match Builtin.of_name f with
    | Some b ->
      let psig, rsig = Builtin.signature b in
      check_num_args loc f (List.length psig) (List.length args);
      List.iter2 (check_expr env) args psig;
      rsig
    | None -> (
      match Smap.find_opt f env.funcs with
      | Some { psig; rsig } ->
        check_num_args loc f (List.length psig) (List.length args);
        List.iter2 (check_expr env) args psig;
        rsig
      | None -> Loc.error loc "unknown function '%s'" f))

and check_expr env expr expected =
  let actual = type_of_expr env expr in
  if actual <> expected then
    Loc.error expr.Ast.eloc "this expression has type %s but %s was expected"
      (Ast.typ_to_string actual)
      (Ast.typ_to_string expected)

(* Statements.  Declarations extend the environment for the rest of the
   enclosing block; re-declaring a name visible at the declaration point is
   rejected so that a (function, name) pair denotes a unique static cell,
   which the dependence analyses rely on. *)
let rec check_block env block =
  let check_stmt env stmt =
    let loc = stmt.Ast.sloc in
    match stmt.Ast.skind with
    | Ast.Sdecl (typ, x, init) ->
      if typ = Ast.Tvoid then Loc.error loc "variables cannot have type void";
      if Smap.mem x env.vars then
        Loc.error loc "'%s' is already declared (shadowing is not allowed)" x;
      Option.iter (fun e -> check_expr env e typ) init;
      { env with vars = Smap.add x typ env.vars }
    | Ast.Sassign (x, e) ->
      check_expr env e (lookup_var env loc x);
      env
    | Ast.Sstore (a, idx, e) ->
      (match lookup_var env loc a with
      | Ast.Tarray -> ()
      | t -> Loc.error loc "'%s' has type %s, expected int[]" a (Ast.typ_to_string t));
      check_expr env idx Ast.Tint;
      check_expr env e Ast.Tint;
      env
    | Ast.Sif (cond, b1, b2) ->
      check_expr env cond Ast.Tbool;
      check_block env b1;
      check_block env b2;
      env
    | Ast.Swhile (cond, body) ->
      check_expr env cond Ast.Tbool;
      check_block { env with in_loop = true } body;
      env
    | Ast.Sbreak | Ast.Scontinue ->
      if not env.in_loop then
        Loc.error loc "break/continue outside of a loop";
      env
    | Ast.Sreturn None ->
      if env.ret <> Ast.Tvoid then
        Loc.error loc "this function must return a value of type %s"
          (Ast.typ_to_string env.ret);
      env
    | Ast.Sreturn (Some e) ->
      if env.ret = Ast.Tvoid then
        Loc.error loc "void function cannot return a value";
      check_expr env e env.ret;
      env
    | Ast.Sexpr e ->
      ignore (type_of_expr env e);
      env
  in
  ignore (List.fold_left check_stmt env block)

let func_signatures prog =
  List.fold_left
    (fun acc fn ->
      if Smap.mem fn.Ast.fname acc then
        Loc.error fn.Ast.floc "function '%s' is defined twice" fn.Ast.fname;
      if Builtin.of_name fn.Ast.fname <> None then
        Loc.error fn.Ast.floc "'%s' is a builtin and cannot be redefined"
          fn.Ast.fname;
      (* Arrays flow only through variables and parameters; forbidding
         array returns keeps the alias analysis a simple unification over
         variable handles. *)
      if fn.Ast.fret = Ast.Tarray then
        Loc.error fn.Ast.floc "functions cannot return arrays";
      Smap.add fn.Ast.fname
        { psig = List.map fst fn.Ast.fparams; rsig = fn.Ast.fret }
        acc)
    Smap.empty prog.Ast.funcs

let check_program prog =
  let funcs = func_signatures prog in
  (* Globals: each initializer sees the globals declared before it. *)
  let globals =
    List.fold_left
      (fun vars stmt ->
        match stmt.Ast.skind with
        | Ast.Sdecl (typ, x, init) ->
          if typ = Ast.Tvoid then
            Loc.error stmt.Ast.sloc "variables cannot have type void";
          if Smap.mem x vars then
            Loc.error stmt.Ast.sloc "global '%s' is declared twice" x;
          let env = { vars; funcs; ret = Ast.Tvoid; in_loop = false } in
          Option.iter (fun e -> check_expr env e typ) init;
          Smap.add x typ vars
        | _ -> assert false)
      Smap.empty prog.Ast.globals
  in
  (* The dependence analyses rely on a (function, name) pair denoting a
     unique static cell, so reject a second declaration of the same name
     anywhere in one function, even in disjoint blocks. *)
  let check_unique_decls fn =
    let seen = Hashtbl.create 8 in
    List.iter (fun (_, x) -> Hashtbl.replace seen x ()) fn.Ast.fparams;
    Ast.iter_stmts
      (fun s ->
        match s.Ast.skind with
        | Ast.Sdecl (_, x, _) ->
          if Hashtbl.mem seen x then
            Loc.error s.Ast.sloc
              "'%s' is declared twice in function '%s' (each name may be \
               declared once per function)"
              x fn.Ast.fname;
          Hashtbl.replace seen x ()
        | _ -> ())
      fn.Ast.fbody
  in
  List.iter check_unique_decls prog.Ast.funcs;
  List.iter
    (fun fn ->
      let vars =
        List.fold_left
          (fun vars (typ, x) ->
            if Smap.mem x vars then
              Loc.error fn.Ast.floc
                "parameter '%s' of '%s' is already bound (shadowing is not allowed)"
                x fn.Ast.fname;
            Smap.add x typ vars)
          globals fn.Ast.fparams
      in
      check_block { vars; funcs; ret = fn.Ast.fret; in_loop = false } fn.Ast.fbody)
    prog.Ast.funcs;
  (match Smap.find_opt "main" funcs with
  | Some { psig = []; _ } -> ()
  | Some _ -> failwith "main must take no parameters"
  | None -> failwith "program has no main function");
  prog

let parse_and_check src = check_program (Parser.parse_program src)
