(** Static type checking for MCL.

    Beyond ordinary type errors this rejects variable shadowing (so a
    (function, name) pair is a unique static cell, which the dependence
    analyses in [exom_cfg] rely on) and requires a parameterless [main]. *)

(** Returns its argument unchanged on success; raises {!Loc.Error} on a
    located error and [Failure] on program-level errors (missing [main]). *)
val check_program : Ast.program -> Ast.program

(** Convenience: parse then check. *)
val parse_and_check : string -> Ast.program
