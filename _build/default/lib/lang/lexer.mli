(** Hand-written lexer for MCL.

    Comments run from [//] to end of line.  Raises {!Loc.Error} on
    malformed input. *)

type t

val create : string -> t

(** Next token with its location; returns [Token.EOF] at end of input
    (repeatedly, if called again). *)
val next : t -> Token.t * Loc.t

(** Whole-input tokenization, EOF token included as the last element. *)
val tokenize : string -> (Token.t * Loc.t) list
