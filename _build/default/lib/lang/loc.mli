(** Source locations and located errors for MCL front-end phases. *)

type t = { line : int; col : int }

val make : line:int -> col:int -> t
val dummy : t
val line : t -> int
val col : t -> int
val pp : t Fmt.t

(** Raised by the lexer, parser and typechecker on malformed input. *)
exception Error of t * string

(** [error loc fmt ...] raises {!Error} with a formatted message. *)
val error : t -> ('a, Format.formatter, unit, 'b) format4 -> 'a

val error_to_string : t * string -> string
