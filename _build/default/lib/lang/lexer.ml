type t = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;  (* offset of the beginning of the current line *)
}

let create src = { src; pos = 0; line = 1; bol = 0 }

let loc lx = Loc.make ~line:lx.line ~col:(lx.pos - lx.bol + 1)

let peek_char lx =
  if lx.pos < String.length lx.src then Some lx.src.[lx.pos] else None

let advance lx =
  (match peek_char lx with
  | Some '\n' ->
    lx.line <- lx.line + 1;
    lx.bol <- lx.pos + 1
  | _ -> ());
  lx.pos <- lx.pos + 1

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_alnum c = is_alpha c || is_digit c

let rec skip_blanks_and_comments lx =
  match peek_char lx with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance lx;
    skip_blanks_and_comments lx
  | Some '/' when lx.pos + 1 < String.length lx.src && lx.src.[lx.pos + 1] = '/'
    ->
    let rec to_eol () =
      match peek_char lx with
      | Some '\n' | None -> ()
      | Some _ ->
        advance lx;
        to_eol ()
    in
    to_eol ();
    skip_blanks_and_comments lx
  | _ -> ()

let keyword_of_string = function
  | "int" -> Some Token.KW_INT
  | "bool" -> Some Token.KW_BOOL
  | "void" -> Some Token.KW_VOID
  | "true" -> Some Token.KW_TRUE
  | "false" -> Some Token.KW_FALSE
  | "if" -> Some Token.KW_IF
  | "else" -> Some Token.KW_ELSE
  | "while" -> Some Token.KW_WHILE
  | "break" -> Some Token.KW_BREAK
  | "continue" -> Some Token.KW_CONTINUE
  | "return" -> Some Token.KW_RETURN
  | _ -> None

let lex_ident_or_keyword lx =
  let start = lx.pos in
  while (match peek_char lx with Some c -> is_alnum c | None -> false) do
    advance lx
  done;
  let word = String.sub lx.src start (lx.pos - start) in
  match keyword_of_string word with
  | Some kw -> kw
  | None -> Token.IDENT word

let lex_int lx =
  let start = lx.pos in
  while (match peek_char lx with Some c -> is_digit c | None -> false) do
    advance lx
  done;
  Token.INT (int_of_string (String.sub lx.src start (lx.pos - start)))

(* Lex a token whose first character is an operator or delimiter. *)
let lex_symbol lx c =
  let l = loc lx in
  let two expect tok1 tok0 =
    advance lx;
    match peek_char lx with
    | Some c2 when c2 = expect ->
      advance lx;
      tok1
    | _ -> tok0
  in
  let one tok =
    advance lx;
    tok
  in
  match c with
  | '(' -> one Token.LPAREN
  | ')' -> one Token.RPAREN
  | '{' -> one Token.LBRACE
  | '}' -> one Token.RBRACE
  | '[' -> one Token.LBRACKET
  | ']' -> one Token.RBRACKET
  | ',' -> one Token.COMMA
  | ';' -> one Token.SEMI
  | '+' -> one Token.PLUS
  | '-' -> one Token.MINUS
  | '*' -> one Token.STAR
  | '/' -> one Token.SLASH
  | '%' -> one Token.PERCENT
  | '=' -> two '=' Token.EQ Token.ASSIGN
  | '<' -> two '=' Token.LE Token.LT
  | '>' -> two '=' Token.GE Token.GT
  | '!' -> two '=' Token.NE Token.BANG
  | '&' ->
    advance lx;
    (match peek_char lx with
    | Some '&' ->
      advance lx;
      Token.AMPAMP
    | _ -> Loc.error l "stray '&' (did you mean '&&'?)")
  | '|' ->
    advance lx;
    (match peek_char lx with
    | Some '|' ->
      advance lx;
      Token.BARBAR
    | _ -> Loc.error l "stray '|' (did you mean '||'?)")
  | c -> Loc.error l "unexpected character %C" c

let next lx =
  skip_blanks_and_comments lx;
  let l = loc lx in
  let tok =
    match peek_char lx with
    | None -> Token.EOF
    | Some c when is_digit c -> lex_int lx
    | Some c when is_alpha c -> lex_ident_or_keyword lx
    | Some c -> lex_symbol lx c
  in
  (tok, l)

let tokenize src =
  let lx = create src in
  let rec loop acc =
    let ((tok, _) as t) = next lx in
    if tok = Token.EOF then List.rev (t :: acc) else loop (t :: acc)
  in
  loop []
