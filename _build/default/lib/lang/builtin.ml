type t = Print | Input | New_array | Len

let of_name = function
  | "print" -> Some Print
  | "input" -> Some Input
  | "new_array" -> Some New_array
  | "len" -> Some Len
  | _ -> None

let name = function
  | Print -> "print"
  | Input -> "input"
  | New_array -> "new_array"
  | Len -> "len"

let signature = function
  | Print -> ([ Ast.Tint ], Ast.Tvoid)
  | Input -> ([], Ast.Tint)
  | New_array -> ([ Ast.Tint ], Ast.Tarray)
  | Len -> ([ Ast.Tarray ], Ast.Tint)
