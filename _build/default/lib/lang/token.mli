(** Lexical tokens of MCL. *)

type t =
  | INT of int
  | IDENT of string
  | KW_INT | KW_BOOL | KW_VOID
  | KW_TRUE | KW_FALSE
  | KW_IF | KW_ELSE | KW_WHILE
  | KW_BREAK | KW_CONTINUE | KW_RETURN
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | COMMA | SEMI
  | ASSIGN
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | LT | LE | GT | GE | EQ | NE
  | AMPAMP | BARBAR | BANG
  | EOF

val to_string : t -> string
val pp : t Fmt.t
