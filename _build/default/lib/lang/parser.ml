type t = {
  lexer : Lexer.t;
  mutable tok : Token.t;
  mutable tok_loc : Loc.t;
  mutable next_sid : int;
}

let create src =
  let lexer = Lexer.create src in
  let tok, tok_loc = Lexer.next lexer in
  { lexer; tok; tok_loc; next_sid = 0 }

let advance p =
  let tok, tok_loc = Lexer.next p.lexer in
  p.tok <- tok;
  p.tok_loc <- tok_loc

let fresh_sid p =
  let sid = p.next_sid in
  p.next_sid <- sid + 1;
  sid

let expect p tok =
  if p.tok = tok then advance p
  else
    Loc.error p.tok_loc "expected '%s' but found '%s'" (Token.to_string tok)
      (Token.to_string p.tok)

let expect_ident p =
  match p.tok with
  | Token.IDENT name ->
    advance p;
    name
  | tok ->
    Loc.error p.tok_loc "expected identifier but found '%s'"
      (Token.to_string tok)

(* A type keyword optionally followed by [] for arrays. *)
let parse_typ p =
  let base =
    match p.tok with
    | Token.KW_INT -> Ast.Tint
    | Token.KW_BOOL -> Ast.Tbool
    | Token.KW_VOID -> Ast.Tvoid
    | tok -> Loc.error p.tok_loc "expected a type but found '%s'" (Token.to_string tok)
  in
  advance p;
  if p.tok = Token.LBRACKET then begin
    if base <> Ast.Tint then
      Loc.error p.tok_loc "only int arrays are supported";
    advance p;
    expect p Token.RBRACKET;
    Ast.Tarray
  end
  else base

let starts_typ = function
  | Token.KW_INT | Token.KW_BOOL | Token.KW_VOID -> true
  | _ -> false

(* Expressions, by precedence climbing.  Levels from loosest to tightest:
   || ; && ; == != ; < <= > >= ; + - ; * / % ; unary ; primary. *)

let binop_of_token = function
  | Token.BARBAR -> Some (Ast.Or, 1)
  | Token.AMPAMP -> Some (Ast.And, 2)
  | Token.EQ -> Some (Ast.Eq, 3)
  | Token.NE -> Some (Ast.Ne, 3)
  | Token.LT -> Some (Ast.Lt, 4)
  | Token.LE -> Some (Ast.Le, 4)
  | Token.GT -> Some (Ast.Gt, 4)
  | Token.GE -> Some (Ast.Ge, 4)
  | Token.PLUS -> Some (Ast.Add, 5)
  | Token.MINUS -> Some (Ast.Sub, 5)
  | Token.STAR -> Some (Ast.Mul, 6)
  | Token.SLASH -> Some (Ast.Div, 6)
  | Token.PERCENT -> Some (Ast.Mod, 6)
  | _ -> None

let rec parse_expr p = parse_binary p 1

and parse_binary p min_prec =
  let lhs = parse_unary p in
  let rec loop lhs =
    match binop_of_token p.tok with
    | Some (op, prec) when prec >= min_prec ->
      let loc = p.tok_loc in
      advance p;
      let rhs = parse_binary p (prec + 1) in
      loop { Ast.edesc = Ast.Ebinop (op, lhs, rhs); eloc = loc }
    | _ -> lhs
  in
  loop lhs

and parse_unary p =
  let loc = p.tok_loc in
  match p.tok with
  | Token.MINUS ->
    advance p;
    let e = parse_unary p in
    { Ast.edesc = Ast.Eunop (Ast.Neg, e); eloc = loc }
  | Token.BANG ->
    advance p;
    let e = parse_unary p in
    { Ast.edesc = Ast.Eunop (Ast.Not, e); eloc = loc }
  | _ -> parse_primary p

and parse_primary p =
  let loc = p.tok_loc in
  match p.tok with
  | Token.INT n ->
    advance p;
    { Ast.edesc = Ast.Eint n; eloc = loc }
  | Token.KW_TRUE ->
    advance p;
    { Ast.edesc = Ast.Ebool true; eloc = loc }
  | Token.KW_FALSE ->
    advance p;
    { Ast.edesc = Ast.Ebool false; eloc = loc }
  | Token.LPAREN ->
    advance p;
    let e = parse_expr p in
    expect p Token.RPAREN;
    e
  | Token.IDENT name -> (
    advance p;
    match p.tok with
    | Token.LPAREN ->
      advance p;
      let args = parse_args p in
      { Ast.edesc = Ast.Ecall (name, args); eloc = loc }
    | Token.LBRACKET ->
      advance p;
      let idx = parse_expr p in
      expect p Token.RBRACKET;
      { Ast.edesc = Ast.Eindex (name, idx); eloc = loc }
    | _ -> { Ast.edesc = Ast.Evar name; eloc = loc })
  | tok ->
    Loc.error loc "expected an expression but found '%s'" (Token.to_string tok)

and parse_args p =
  if p.tok = Token.RPAREN then begin
    advance p;
    []
  end
  else
    let rec loop acc =
      let e = parse_expr p in
      match p.tok with
      | Token.COMMA ->
        advance p;
        loop (e :: acc)
      | _ ->
        expect p Token.RPAREN;
        List.rev (e :: acc)
    in
    loop []

(* Statements. *)

let rec parse_stmt p =
  let loc = p.tok_loc in
  let sid = fresh_sid p in
  let mk skind = { Ast.sid; sloc = loc; skind } in
  match p.tok with
  | tok when starts_typ tok ->
    let typ = parse_typ p in
    let name = expect_ident p in
    let init =
      if p.tok = Token.ASSIGN then begin
        advance p;
        Some (parse_expr p)
      end
      else None
    in
    expect p Token.SEMI;
    mk (Ast.Sdecl (typ, name, init))
  | Token.KW_IF ->
    advance p;
    expect p Token.LPAREN;
    let cond = parse_expr p in
    expect p Token.RPAREN;
    let then_blk = parse_block p in
    let else_blk =
      if p.tok = Token.KW_ELSE then begin
        advance p;
        if p.tok = Token.KW_IF then [ parse_stmt p ] else parse_block p
      end
      else []
    in
    mk (Ast.Sif (cond, then_blk, else_blk))
  | Token.KW_WHILE ->
    advance p;
    expect p Token.LPAREN;
    let cond = parse_expr p in
    expect p Token.RPAREN;
    let body = parse_block p in
    mk (Ast.Swhile (cond, body))
  | Token.KW_BREAK ->
    advance p;
    expect p Token.SEMI;
    mk Ast.Sbreak
  | Token.KW_CONTINUE ->
    advance p;
    expect p Token.SEMI;
    mk Ast.Scontinue
  | Token.KW_RETURN ->
    advance p;
    if p.tok = Token.SEMI then begin
      advance p;
      mk (Ast.Sreturn None)
    end
    else begin
      let e = parse_expr p in
      expect p Token.SEMI;
      mk (Ast.Sreturn (Some e))
    end
  | Token.IDENT name -> (
    advance p;
    match p.tok with
    | Token.ASSIGN ->
      advance p;
      let e = parse_expr p in
      expect p Token.SEMI;
      mk (Ast.Sassign (name, e))
    | Token.LBRACKET ->
      advance p;
      let idx = parse_expr p in
      expect p Token.RBRACKET;
      expect p Token.ASSIGN;
      let e = parse_expr p in
      expect p Token.SEMI;
      mk (Ast.Sstore (name, idx, e))
    | Token.LPAREN ->
      advance p;
      let args = parse_args p in
      expect p Token.SEMI;
      mk (Ast.Sexpr { Ast.edesc = Ast.Ecall (name, args); eloc = loc })
    | tok ->
      Loc.error p.tok_loc "expected '=', '[' or '(' after identifier, found '%s'"
        (Token.to_string tok))
  | tok ->
    Loc.error loc "expected a statement but found '%s'" (Token.to_string tok)

and parse_block p =
  expect p Token.LBRACE;
  let rec loop acc =
    if p.tok = Token.RBRACE then begin
      advance p;
      List.rev acc
    end
    else loop (parse_stmt p :: acc)
  in
  loop []

let parse_params p =
  expect p Token.LPAREN;
  if p.tok = Token.RPAREN then begin
    advance p;
    []
  end
  else
    let rec loop acc =
      let typ = parse_typ p in
      let name = expect_ident p in
      match p.tok with
      | Token.COMMA ->
        advance p;
        loop ((typ, name) :: acc)
      | _ ->
        expect p Token.RPAREN;
        List.rev ((typ, name) :: acc)
    in
    loop []

(* A top-level item: either a global variable declaration or a function.
   Both start with a type and a name; a '(' then signals a function. *)
let parse_item p =
  let loc = p.tok_loc in
  let typ = parse_typ p in
  let name = expect_ident p in
  if p.tok = Token.LPAREN then begin
    let params = parse_params p in
    let body = parse_block p in
    `Func { Ast.fname = name; fret = typ; fparams = params; fbody = body; floc = loc }
  end
  else begin
    let sid = fresh_sid p in
    let init =
      if p.tok = Token.ASSIGN then begin
        advance p;
        Some (parse_expr p)
      end
      else None
    in
    expect p Token.SEMI;
    `Global { Ast.sid; sloc = loc; skind = Ast.Sdecl (typ, name, init) }
  end

let parse_program src =
  let p = create src in
  let rec loop globals funcs =
    if p.tok = Token.EOF then
      { Ast.globals = List.rev globals; funcs = List.rev funcs }
    else
      match parse_item p with
      | `Global g -> loop (g :: globals) funcs
      | `Func f -> loop globals (f :: funcs)
  in
  loop [] []
