open Format

let rec pp_expr ppf expr =
  match expr.Ast.edesc with
  | Ast.Eint n -> fprintf ppf "%d" n
  | Ast.Ebool b -> fprintf ppf "%b" b
  | Ast.Evar x -> pp_print_string ppf x
  | Ast.Eindex (a, e) -> fprintf ppf "%s[%a]" a pp_expr e
  | Ast.Eunop (op, e) -> fprintf ppf "%s%a" (Ast.unop_to_string op) pp_atom e
  | Ast.Ebinop (op, e1, e2) ->
    fprintf ppf "%a %s %a" pp_atom e1 (Ast.binop_to_string op) pp_atom e2
  | Ast.Ecall (f, args) ->
    fprintf ppf "%s(%a)" f
      (pp_print_list ~pp_sep:(fun ppf () -> fprintf ppf ", ") pp_expr)
      args

(* Parenthesize compound sub-expressions; precedence is not reconstructed,
   which keeps the printer simple and the output unambiguous. *)
and pp_atom ppf expr =
  match expr.Ast.edesc with
  | Ast.Ebinop _ -> fprintf ppf "(%a)" pp_expr expr
  | _ -> pp_expr ppf expr

let rec pp_stmt ppf stmt =
  match stmt.Ast.skind with
  | Ast.Sdecl (typ, x, None) -> fprintf ppf "%s %s;" (Ast.typ_to_string typ) x
  | Ast.Sdecl (typ, x, Some e) ->
    fprintf ppf "%s %s = %a;" (Ast.typ_to_string typ) x pp_expr e
  | Ast.Sassign (x, e) -> fprintf ppf "%s = %a;" x pp_expr e
  | Ast.Sstore (a, i, e) -> fprintf ppf "%s[%a] = %a;" a pp_expr i pp_expr e
  | Ast.Sif (cond, b1, []) ->
    fprintf ppf "@[<v 2>if (%a) {%a@]@,}" pp_expr cond pp_block_body b1
  | Ast.Sif (cond, b1, b2) ->
    fprintf ppf "@[<v 2>if (%a) {%a@]@,@[<v 2>} else {%a@]@,}" pp_expr cond
      pp_block_body b1 pp_block_body b2
  | Ast.Swhile (cond, body) ->
    fprintf ppf "@[<v 2>while (%a) {%a@]@,}" pp_expr cond pp_block_body body
  | Ast.Sbreak -> pp_print_string ppf "break;"
  | Ast.Scontinue -> pp_print_string ppf "continue;"
  | Ast.Sreturn None -> pp_print_string ppf "return;"
  | Ast.Sreturn (Some e) -> fprintf ppf "return %a;" pp_expr e
  | Ast.Sexpr e -> fprintf ppf "%a;" pp_expr e

and pp_block_body ppf block =
  List.iter (fun s -> fprintf ppf "@,%a" pp_stmt s) block

let pp_func ppf fn =
  let pp_param ppf (typ, x) = fprintf ppf "%s %s" (Ast.typ_to_string typ) x in
  fprintf ppf "@[<v 2>%s %s(%a) {%a@]@,}"
    (Ast.typ_to_string fn.Ast.fret)
    fn.Ast.fname
    (pp_print_list ~pp_sep:(fun ppf () -> fprintf ppf ", ") pp_param)
    fn.Ast.fparams pp_block_body fn.Ast.fbody

let pp_program ppf prog =
  fprintf ppf "@[<v>";
  List.iter (fun g -> fprintf ppf "%a@," pp_stmt g) prog.Ast.globals;
  pp_print_list ~pp_sep:pp_print_cut pp_func ppf prog.Ast.funcs;
  fprintf ppf "@]"

let program_to_string prog = asprintf "%a" pp_program prog
let expr_to_string e = asprintf "%a" pp_expr e

let stmt_head stmt =
  match stmt.Ast.skind with
  | Ast.Sif (cond, _, _) -> asprintf "if (%a)" pp_expr cond
  | Ast.Swhile (cond, _) -> asprintf "while (%a)" pp_expr cond
  | _ -> asprintf "%a" pp_stmt stmt
