type t =
  | INT of int
  | IDENT of string
  | KW_INT | KW_BOOL | KW_VOID
  | KW_TRUE | KW_FALSE
  | KW_IF | KW_ELSE | KW_WHILE
  | KW_BREAK | KW_CONTINUE | KW_RETURN
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | COMMA | SEMI
  | ASSIGN
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | LT | LE | GT | GE | EQ | NE
  | AMPAMP | BARBAR | BANG
  | EOF

let to_string = function
  | INT n -> string_of_int n
  | IDENT s -> s
  | KW_INT -> "int"
  | KW_BOOL -> "bool"
  | KW_VOID -> "void"
  | KW_TRUE -> "true"
  | KW_FALSE -> "false"
  | KW_IF -> "if"
  | KW_ELSE -> "else"
  | KW_WHILE -> "while"
  | KW_BREAK -> "break"
  | KW_CONTINUE -> "continue"
  | KW_RETURN -> "return"
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | COMMA -> ","
  | SEMI -> ";"
  | ASSIGN -> "="
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | PERCENT -> "%"
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | EQ -> "=="
  | NE -> "!="
  | AMPAMP -> "&&"
  | BARBAR -> "||"
  | BANG -> "!"
  | EOF -> "<eof>"

let pp ppf t = Fmt.string ppf (to_string t)
