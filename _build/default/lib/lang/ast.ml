type typ = Tint | Tbool | Tarray | Tvoid

type unop = Neg | Not

type binop =
  | Add | Sub | Mul | Div | Mod
  | Lt | Le | Gt | Ge | Eq | Ne
  | And | Or

type expr = { edesc : edesc; eloc : Loc.t }

and edesc =
  | Eint of int
  | Ebool of bool
  | Evar of string
  | Eindex of string * expr
  | Eunop of unop * expr
  | Ebinop of binop * expr * expr
  | Ecall of string * expr list

type stmt = { sid : int; sloc : Loc.t; skind : skind }

and skind =
  | Sdecl of typ * string * expr option
  | Sassign of string * expr
  | Sstore of string * expr * expr
  | Sif of expr * block * block
  | Swhile of expr * block
  | Sbreak
  | Scontinue
  | Sreturn of expr option
  | Sexpr of expr

and block = stmt list

type func = {
  fname : string;
  fret : typ;
  fparams : (typ * string) list;
  fbody : block;
  floc : Loc.t;
}

type program = { globals : stmt list; funcs : func list }

let typ_to_string = function
  | Tint -> "int"
  | Tbool -> "bool"
  | Tarray -> "int[]"
  | Tvoid -> "void"

let unop_to_string = function Neg -> "-" | Not -> "!"

let binop_to_string = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">=" | Eq -> "==" | Ne -> "!="
  | And -> "&&" | Or -> "||"

let is_predicate stmt =
  match stmt.skind with Sif _ | Swhile _ -> true | _ -> false

let rec expr_vars acc expr =
  match expr.edesc with
  | Eint _ | Ebool _ -> acc
  | Evar x -> x :: acc
  | Eindex (a, e) -> expr_vars (a :: acc) e
  | Eunop (_, e) -> expr_vars acc e
  | Ebinop (_, e1, e2) -> expr_vars (expr_vars acc e1) e2
  | Ecall (_, args) -> List.fold_left expr_vars acc args

let rec expr_calls acc expr =
  match expr.edesc with
  | Eint _ | Ebool _ | Evar _ -> acc
  | Eindex (_, e) | Eunop (_, e) -> expr_calls acc e
  | Ebinop (_, e1, e2) -> expr_calls (expr_calls acc e1) e2
  | Ecall (f, args) -> List.fold_left expr_calls (f :: acc) args

let rec iter_stmts f block = List.iter (iter_stmt f) block

and iter_stmt f stmt =
  f stmt;
  match stmt.skind with
  | Sif (_, b1, b2) ->
    iter_stmts f b1;
    iter_stmts f b2
  | Swhile (_, b) -> iter_stmts f b
  | Sdecl _ | Sassign _ | Sstore _ | Sbreak | Scontinue | Sreturn _ | Sexpr _
    -> ()

let iter_program f prog =
  iter_stmts f prog.globals;
  List.iter (fun fn -> iter_stmts f fn.fbody) prog.funcs

let stmt_count prog =
  let n = ref 0 in
  iter_program (fun _ -> incr n) prog;
  !n

let find_func prog name = List.find_opt (fun f -> f.fname = name) prog.funcs

(** Table from statement id to statement, plus the enclosing function name
    ([None] for global initializers). *)
let stmt_table prog =
  let tbl = Hashtbl.create 64 in
  iter_stmts (fun s -> Hashtbl.replace tbl s.sid (s, None)) prog.globals;
  List.iter
    (fun fn ->
      iter_stmts (fun s -> Hashtbl.replace tbl s.sid (s, Some fn.fname)) fn.fbody)
    prog.funcs;
  tbl

let stmt_line prog sid =
  match Hashtbl.find_opt (stmt_table prog) sid with
  | Some (s, _) -> Loc.line s.sloc
  | None -> 0
