(** The four MCL builtins: [print(e)] appends an int to the program
    output, [input()] reads the next int of the program input,
    [new_array(n)] allocates a zero-filled int array, [len(a)] returns
    an array's length. *)

type t = Print | Input | New_array | Len

val of_name : string -> t option
val name : t -> string

(** Parameter types and return type. *)
val signature : t -> Ast.typ list * Ast.typ
