type t = { line : int; col : int }

let make ~line ~col = { line; col }
let dummy = { line = 0; col = 0 }
let line t = t.line
let col t = t.col
let pp ppf t = Fmt.pf ppf "%d:%d" t.line t.col

exception Error of t * string

let error loc fmt = Fmt.kstr (fun msg -> raise (Error (loc, msg))) fmt

let error_to_string (loc, msg) = Fmt.str "%a: %s" pp loc msg
