(** Pretty-printing of MCL programs.  Round-trips through the parser
    (modulo statement ids, which depend only on statement order and are
    therefore preserved). *)

val pp_expr : Format.formatter -> Ast.expr -> unit
val pp_stmt : Format.formatter -> Ast.stmt -> unit
val pp_func : Format.formatter -> Ast.func -> unit
val pp_program : Format.formatter -> Ast.program -> unit
val program_to_string : Ast.program -> string
val expr_to_string : Ast.expr -> string

(** One-line rendering of a statement for reports: compound statements
    are shown as their header ("if (c)", "while (c)"). *)
val stmt_head : Ast.stmt -> string
