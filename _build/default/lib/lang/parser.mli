(** Recursive-descent parser for MCL.

    Assigns a fresh, dense statement id to every statement in program
    order (globals first, then functions in source order); ids are stable
    across re-parses of the same source, which lets a faulty program and
    its corrected version share statement ids as long as the fault is an
    expression-level mutation. *)

(** Parse a complete program.  Raises {!Loc.Error} on syntax errors. *)
val parse_program : string -> Ast.program
