(** Abstract syntax of MCL, the mini C-like language used as the tracing
    substrate for the execution-omission-error experiments.

    Every statement carries a unique id ([sid]) assigned by the parser;
    statement *instances* in execution traces are identified by a pair of
    a [sid] and an occurrence count. *)

type typ = Tint | Tbool | Tarray | Tvoid

type unop = Neg | Not

type binop =
  | Add | Sub | Mul | Div | Mod
  | Lt | Le | Gt | Ge | Eq | Ne
  | And | Or

type expr = { edesc : edesc; eloc : Loc.t }

and edesc =
  | Eint of int
  | Ebool of bool
  | Evar of string
  | Eindex of string * expr  (** [a[e]] *)
  | Eunop of unop * expr
  | Ebinop of binop * expr * expr
  | Ecall of string * expr list  (** user function or builtin *)

type stmt = { sid : int; sloc : Loc.t; skind : skind }

and skind =
  | Sdecl of typ * string * expr option
  | Sassign of string * expr
  | Sstore of string * expr * expr  (** [a[i] = e] *)
  | Sif of expr * block * block
  | Swhile of expr * block
  | Sbreak
  | Scontinue
  | Sreturn of expr option
  | Sexpr of expr  (** call for effect, e.g. [print(e)] *)

and block = stmt list

type func = {
  fname : string;
  fret : typ;
  fparams : (typ * string) list;
  fbody : block;
  floc : Loc.t;
}

type program = { globals : stmt list; funcs : func list }

val typ_to_string : typ -> string
val unop_to_string : unop -> string
val binop_to_string : binop -> string

(** [is_predicate s] holds for [Sif] and [Swhile] statements, the statements
    whose dynamic instances are predicate instances eligible for switching. *)
val is_predicate : stmt -> bool

(** Variables read by an expression (array names included), prepended to the
    accumulator in unspecified order. *)
val expr_vars : string list -> expr -> string list

(** Names of functions called (directly or nested) by an expression. *)
val expr_calls : string list -> expr -> string list

(** Pre-order iteration over all statements of a block, descending into
    branches and loop bodies. *)
val iter_stmts : (stmt -> unit) -> block -> unit

val iter_stmt : (stmt -> unit) -> stmt -> unit
val iter_program : (stmt -> unit) -> program -> unit
val stmt_count : program -> int
val find_func : program -> string -> func option

val stmt_table : program -> (int, stmt * string option) Hashtbl.t
val stmt_line : program -> int -> int
