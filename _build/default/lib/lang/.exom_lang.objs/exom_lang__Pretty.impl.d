lib/lang/pretty.ml: Ast Format List
