lib/lang/builtin.ml: Ast
