lib/lang/ast.ml: Hashtbl List Loc
