lib/lang/token.mli: Fmt
