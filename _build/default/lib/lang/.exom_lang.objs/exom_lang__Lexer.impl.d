lib/lang/lexer.ml: List Loc String Token
