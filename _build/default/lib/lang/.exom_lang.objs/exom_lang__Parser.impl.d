lib/lang/parser.ml: Ast Lexer List Loc Token
