lib/lang/loc.mli: Fmt Format
