lib/lang/ast.mli: Hashtbl Loc
