lib/lang/builtin.mli: Ast
