lib/lang/typecheck.ml: Ast Builtin Hashtbl List Loc Map Option Parser String
