module Profile = Exom_interp.Profile
module Proginfo = Exom_cfg.Proginfo
module Slice = Exom_ddg.Slice
module Trace = Exom_interp.Trace
module Value = Exom_interp.Value

module Vset = Set.Make (struct
  type t = Value.t

  let compare = compare
end)

(* Confidence analysis (Zhang-Gupta-Gupta, PLDI'06 [19], as used by the
   paper).  Each instance's *alt set* is the set of values it could have
   produced while every correct output (and every instance the user
   marked benign) still observes its value.  Confidence is
   C = 1 - log|alt| / log|range|, with range approximated by the value
   profile: C = 1 means the instance provably produced a correct value
   (prunable), C = 0 means nothing vouches for it.

   Alt sets are propagated backward to a fixpoint:
   - a constrained consumer restricts its producers to the candidate
     values that re-evaluate into the consumer's alt set
     ({!Reval}, concrete one-step re-evaluation);
   - a correct output pins the branch outcomes of its control ancestors
     (its appearance at the aligned position vouches the whole control
     path to it).  Pinning deliberately does NOT flow from arbitrary
     value-pinned instances: an instance can carry a coincidentally
     correct value on a corrupted control path (e.g. a counter's first
     increment), and pinning its ancestors would prune the very
     predicates the demand-driven search must expand;
   - a verified *value-affecting* implicit dependence p -> t pins p's
     outcome once t's value is fully vouched — which is exactly why
     implicit edges, unlike blind potential edges, are safe to
     propagate confidence along (§3.2 of the paper). *)

type t = {
  conf : float array;
  alt : Vset.t option array;
  range_size : int array;
}

let confidence t idx = t.conf.(idx)
let alt_set t idx = t.alt.(idx)

let value_range profile inst =
  let sid = inst.Trace.sid in
  match inst.Trace.kind with
  | Trace.Kpredicate _ -> [ Value.Vbool true; Value.Vbool false ]
  | _ -> (
    match inst.Trace.value with
    | Value.Vint _ as v ->
      List.map (fun n -> Value.Vint n)
        (Profile.range profile sid ~observed:v)
    | Value.Vbool _ -> [ Value.Vbool true; Value.Vbool false ]
    | Value.Varr _ | Value.Vunit -> [])

let compute info profile trace ~correct ~benign ~implicit =
  let n = Trace.length trace in
  let alt = Array.make n None in
  let ranges = Array.make n [||] in
  for i = 0 to n - 1 do
    ranges.(i) <- Array.of_list (value_range profile (Trace.get trace i))
  done;
  (* consumers.(d) = instances that read d's principal value, with the
     cell they read it through *)
  let consumers = Array.make n [] in
  Trace.iter
    (fun inst ->
      List.iter
        (fun (cell, def, v) ->
          if def >= 0 && Value.equal (Trace.get trace def).Trace.value v then
            consumers.(def) <- (inst.Trace.idx, cell) :: consumers.(def))
        inst.Trace.uses)
    trace;
  (* implicit_preds.(t) = switched predicates verified to reach t *)
  let implicit_preds = Array.make n [] in
  List.iter
    (fun (p, t_) ->
      if p >= 0 && p < n && t_ >= 0 && t_ < n then
        implicit_preds.(t_) <- p :: implicit_preds.(t_))
    implicit;
  let queue = Queue.create () in
  let constrain idx set =
    let next =
      match alt.(idx) with None -> set | Some cur -> Vset.inter cur set
    in
    let changed =
      match alt.(idx) with
      | None -> true
      | Some cur -> not (Vset.equal cur next)
    in
    if changed then begin
      alt.(idx) <- Some next;
      Queue.add idx queue
    end
  in
  let pin_outcome idx =
    match Trace.branch_of (Trace.get trace idx) with
    | Some b -> constrain idx (Vset.singleton (Value.Vbool b))
    | None -> ()
  in
  let observed idx = (Trace.get trace idx).Trace.value in
  List.iter
    (fun o ->
      if o >= 0 && o < n then begin
        constrain o (Vset.singleton (observed o));
        (* the correct output's control path is vouched for *)
        let rec pin_ancestors idx =
          let parent = (Trace.get trace idx).Trace.parent in
          if parent >= 0 then begin
            pin_outcome parent;
            pin_ancestors parent
          end
        in
        pin_ancestors o
      end)
    correct;
  (* Benign instances pin their own value (or outcome), nothing more: a
     benign verdict vouches for the state the programmer inspected, not
     for the control decisions around it — pinning ancestors from benign
     marks lets constraint cascades assign confidence 1 to the very
     predicates the demand-driven search must expand (observed on the
     gzip decoder fault). *)
  List.iter
    (fun b ->
      if b >= 0 && b < n then
        match observed b with
        | (Value.Vint _ | Value.Vbool _) as v -> constrain b (Vset.singleton v)
        | Value.Varr _ | Value.Vunit -> pin_outcome b)
    benign;
  (* Fixpoint. *)
  let accepts u cell v' =
    let inst = Trace.get trace u in
    let stmt = Proginfo.stmt_of_sid info inst.Trace.sid in
    match Reval.run stmt inst ~cell ~value:v' with
    | Reval.Unknown -> true
    | Reval.Rejected -> false
    | Reval.Known w -> (
      match alt.(u) with None -> true | Some s -> Vset.mem w s)
  in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    (* Only an instance whose value is fully vouched for (singleton alt)
       pins the predicates it was verified to implicitly depend on; a
       weak constraint certifies nothing about branch outcomes. *)
    let vouched =
      match alt.(u) with Some s -> Vset.cardinal s <= 1 | None -> false
    in
    if vouched then List.iter (fun p -> pin_outcome p) implicit_preds.(u);
    let inst = Trace.get trace u in
    List.iter
      (fun (cell, def, v) ->
        if def >= 0 && Value.equal (Trace.get trace def).Trace.value v then begin
          let allowed =
            Array.to_list ranges.(def)
            |> List.filter (fun v' -> accepts u cell v')
            |> Vset.of_list
          in
          (* the observed value always qualifies *)
          let allowed = Vset.add v allowed in
          constrain def allowed
        end)
      inst.Trace.uses
  done;
  (* Confidence values. *)
  let conf = Array.make n 0.0 in
  let benign_set = List.fold_left (fun s b -> Slice.Iset.add b s) Slice.Iset.empty benign in
  for i = 0 to n - 1 do
    let c =
      if Slice.Iset.mem i benign_set then 1.0
      else
        match alt.(i) with
        | None -> 0.0
        | Some s ->
          let k = Vset.cardinal s in
          let r = max (Array.length ranges.(i)) k in
          if k <= 1 then 1.0
          else if r <= 1 then 1.0
          else max 0.0 (1.0 -. (log (float_of_int k) /. log (float_of_int r)))
    in
    conf.(i) <- c
  done;
  {
    conf;
    alt;
    range_size = Array.map Array.length ranges;
  }
