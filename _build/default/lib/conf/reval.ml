module Ast = Exom_lang.Ast
module Builtin = Exom_lang.Builtin
module Cell = Exom_interp.Cell
module Trace = Exom_interp.Trace
module Value = Exom_interp.Value

(* Best-effort re-evaluation of one statement instance with a single use
   cell's value substituted: the engine behind alt-set computation in
   confidence analysis ("what other operand values produce the same
   result?").

   The instance's recorded uses are replayed as a queue in evaluation
   order, which reproduces the original read sequence exactly.  Whenever
   the replay cannot be trusted — a call whose argument was substituted,
   an input() read, a short-circuit decision that differs from the
   original, an array read whose index changed — re-evaluation reports
   [Unknown], which callers treat as "no constraint" (candidate
   accepted): imprecision only ever *lowers* confidence and thereby
   keeps more instances in the fault candidate set.  [reject]ed
   candidates (e.g. division by zero) are excluded from alt sets. *)

type result = Known of Value.t | Unknown | Rejected

exception Unknown_exn
exception Reject_exn

type env = {
  mutable queue : (Cell.t * int * Value.t) list;
  subst_cell : Cell.t;
  subst : Value.t;
  mutable subst_applied : int;
}

let pop env =
  match env.queue with
  | [] -> raise Unknown_exn
  | u :: rest ->
    env.queue <- rest;
    u

let read env cell value =
  if Cell.equal cell env.subst_cell then begin
    env.subst_applied <- env.subst_applied + 1;
    env.subst
  end
  else value

let rec ev env expr =
  match expr.Ast.edesc with
  | Ast.Eint n -> Value.Vint n
  | Ast.Ebool b -> Value.Vbool b
  | Ast.Evar x -> (
    let cell, _, value = pop env in
    match Cell.static_var cell with
    | Some y when y = x -> read env cell value
    | _ -> raise Unknown_exn)
  | Ast.Eindex (a, idx_expr) -> (
    (* handle read, then index evaluation, then the element read *)
    let hcell, _, hvalue = pop env in
    (match Cell.static_var hcell with
    | Some y when y = a -> ()
    | _ -> raise Unknown_exn);
    ignore (read env hcell hvalue);
    let vi = ev env idx_expr in
    let ecell, _, evalue = pop env in
    match ecell with
    | Cell.Elem (_, i) ->
      if Value.Vint i <> vi then raise Unknown_exn
        (* substitution redirected the read to an unknown element *)
      else read env ecell evalue
    | _ -> raise Unknown_exn)
  | Ast.Eunop (Ast.Neg, e) -> Value.Vint (-Value.as_int (ev env e))
  | Ast.Eunop (Ast.Not, e) -> Value.Vbool (not (Value.as_bool (ev env e)))
  | Ast.Ebinop ((Ast.And | Ast.Or) as op, e1, e2) ->
    (* Both operands are replayed; if the original run short-circuited,
       the queue misaligns and a pop raises [Unknown_exn].  When it does
       align, non-short-circuit evaluation gives the same value. *)
    let v1 = Value.as_bool (ev env e1) in
    let v2 = Value.as_bool (ev env e2) in
    Value.Vbool (if op = Ast.And then v1 && v2 else v1 || v2)
  | Ast.Ebinop (op, e1, e2) ->
    let v1 = ev env e1 in
    let v2 = ev env e2 in
    apply op v1 v2
  | Ast.Ecall (f, args) -> (
    match Builtin.of_name f with
    | Some Builtin.Input -> raise Unknown_exn
    | Some Builtin.New_array -> raise Unknown_exn
    | Some Builtin.Print ->
      (* print(e) evaluates to its argument (see Interp) *)
      ev env (List.hd args)
    | Some Builtin.Len -> (
      let hcell, _, hvalue = pop env in
      ignore (read env hcell hvalue);
      let lcell, _, lvalue = pop env in
      match lcell with
      | Cell.Elem (_, -1) -> read env lcell lvalue
      | _ -> raise Unknown_exn)
    | None ->
      (* A user call: replay arguments, then the return-cell read.  If
         the substitution landed inside an argument the callee would
         compute something else — give up. *)
      let before = env.subst_applied in
      List.iter (fun a -> ignore (ev env a)) args;
      if env.subst_applied > before then raise Unknown_exn;
      let rcell, _, rvalue = pop env in
      (match rcell with
      | Cell.Ret _ -> read env rcell rvalue
      | _ -> raise Unknown_exn))

and apply op v1 v2 =
  let i1 () = Value.as_int v1 and i2 () = Value.as_int v2 in
  match op with
  | Ast.Add -> Value.Vint (i1 () + i2 ())
  | Ast.Sub -> Value.Vint (i1 () - i2 ())
  | Ast.Mul -> Value.Vint (i1 () * i2 ())
  | Ast.Div -> if i2 () = 0 then raise Reject_exn else Value.Vint (i1 () / i2 ())
  | Ast.Mod ->
    if i2 () = 0 then raise Reject_exn else Value.Vint (i1 () mod i2 ())
  | Ast.Lt -> Value.Vbool (i1 () < i2 ())
  | Ast.Le -> Value.Vbool (i1 () <= i2 ())
  | Ast.Gt -> Value.Vbool (i1 () > i2 ())
  | Ast.Ge -> Value.Vbool (i1 () >= i2 ())
  | Ast.Eq -> Value.Vbool (Value.equal v1 v2)
  | Ast.Ne -> Value.Vbool (not (Value.equal v1 v2))
  | Ast.And | Ast.Or -> assert false

(* The store's recorded target element: its index must not move under
   substitution, or downstream reads would dangle. *)
let stored_index inst =
  List.find_map
    (fun (c, _) -> match c with Cell.Elem (_, i) -> Some i | _ -> None)
    inst.Trace.defs

let run stmt inst ~cell ~value =
  let env =
    { queue = inst.Trace.uses; subst_cell = cell; subst = value;
      subst_applied = 0 }
  in
  try
    match stmt.Ast.skind with
    | Ast.Sdecl (_, _, Some e)
    | Ast.Sassign (_, e)
    | Ast.Sreturn (Some e)
    | Ast.Sexpr e ->
      Known (ev env e)
    | Ast.Sif (c, _, _) | Ast.Swhile (c, _) -> Known (ev env c)
    | Ast.Sstore (a, i, e) ->
      let hcell, _, hvalue = pop env in
      (match Cell.static_var hcell with
      | Some y when y = a -> ()
      | _ -> raise Unknown_exn);
      ignore (read env hcell hvalue);
      let vi = ev env i in
      let ve = ev env e in
      (match stored_index inst with
      | Some recorded when Value.Vint recorded <> vi -> Rejected
      | _ -> Known ve)
    | Ast.Sdecl (_, _, None) | Ast.Sreturn None | Ast.Sbreak | Ast.Scontinue
      -> Unknown
  with
  | Unknown_exn -> Unknown
  | Reject_exn -> Rejected
  | Invalid_argument _ -> Unknown
