(** Pruned, ranked fault candidate sets (the paper's PS): the slice
    minus confidence-1 instances, ordered most-suspicious-first (lowest
    confidence, then shortest dependence distance to the failure
    point). *)

type entry = { idx : int; confidence : float; distance : int }

type t

(** [compute ?extra trace ~slice ~conf ~criterion]: prune [slice] using
    [conf]; distances are measured backward from [criterion] over
    explicit + [extra] dependence edges. *)
val compute :
  ?extra:(int -> int list) ->
  Exom_interp.Trace.t ->
  slice:Exom_ddg.Slice.t ->
  conf:Confidence.t ->
  criterion:int ->
  t

val entries : t -> entry list
val size : t -> int
val static_size : Exom_interp.Trace.t -> t -> int
val instances : t -> int list
val mem : t -> int -> bool
val mem_sid : Exom_interp.Trace.t -> t -> int -> bool
val as_slice : Exom_interp.Trace.t -> t -> Exom_ddg.Slice.t

(** BFS dependence distances from the failure point; unreachable
    instances get [max_int]. *)
val distances :
  ?extra:(int -> int list) ->
  Exom_interp.Trace.t ->
  criterion:int ->
  int array

val confidence_is_one : float -> bool
