(** Confidence analysis (PLDI'06 [19]): the likelihood that a statement
    instance produced a correct value, derived from which correct
    outputs its value (transitively) feeds and how invertible the
    computations in between are.

    [C = 1] instances are pruned from fault candidate sets; [C = 0]
    instances have no evidence of correctness.  See the module source
    for the propagation rules; the alt sets are computed by concrete
    re-evaluation ({!Reval}) over profiled value ranges. *)

module Vset : Set.S with type elt = Exom_interp.Value.t

type t

(** [compute info profile trace ~correct ~benign ~implicit]:
    [correct] are the instance indices of correct outputs, [benign] the
    instances the programmer (or the oracle standing in for them) vouched
    for, and [implicit] the verified implicit dependence edges
    [(switched predicate, target)] added to the graph so far. *)
val compute :
  Exom_cfg.Proginfo.t ->
  Exom_interp.Profile.t ->
  Exom_interp.Trace.t ->
  correct:int list ->
  benign:int list ->
  implicit:(int * int) list ->
  t

val confidence : t -> int -> float
val alt_set : t -> int -> Vset.t option
