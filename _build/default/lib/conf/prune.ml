module Slice = Exom_ddg.Slice
module Trace = Exom_interp.Trace

(* Pruned, ranked fault candidate sets: the PS of the paper's Tables 2-3
   and the selection order of the demand-driven algorithm ("rank the
   executed statements in the pruned slice based on their confidence
   values and their dependence distances to the failure point"). *)

type entry = { idx : int; confidence : float; distance : int }

type t = { entries : entry list (* ranked: most suspicious first *) }

let confidence_is_one c = c >= 0.9999

(* BFS distances (in dependence edges) from the failure point backwards
   over explicit + extra edges. *)
let distances ?(extra = fun _ -> []) trace ~criterion =
  let n = Trace.length trace in
  let dist = Array.make n max_int in
  if criterion >= 0 && criterion < n then begin
    let queue = Queue.create () in
    dist.(criterion) <- 0;
    Queue.add criterion queue;
    while not (Queue.is_empty queue) do
      let idx = Queue.pop queue in
      List.iter
        (fun p ->
          if p >= 0 && p < n && dist.(p) = max_int then begin
            dist.(p) <- dist.(idx) + 1;
            Queue.add p queue
          end)
        (Slice.explicit_preds trace idx @ extra idx)
    done
  end;
  dist

let compute ?extra trace ~slice ~conf ~criterion =
  let dist = distances ?extra trace ~criterion in
  let entries =
    Slice.to_list slice
    |> List.filter_map (fun idx ->
           let confidence = Confidence.confidence conf idx in
           if confidence_is_one confidence then None
           else Some { idx; confidence; distance = dist.(idx) })
    |> List.sort (fun a b ->
           match compare a.confidence b.confidence with
           | 0 -> (
             match compare a.distance b.distance with
             | 0 -> compare a.idx b.idx
             | c -> c)
           | c -> c)
  in
  { entries }

let entries t = t.entries
let size t = List.length t.entries
let instances t = List.map (fun e -> e.idx) t.entries

let static_size trace t =
  List.map (fun e -> (Trace.get trace e.idx).Trace.sid) t.entries
  |> List.sort_uniq compare |> List.length

let mem t idx = List.exists (fun e -> e.idx = idx) t.entries

let mem_sid trace t sid =
  List.exists (fun e -> (Trace.get trace e.idx).Trace.sid = sid) t.entries

let as_slice trace t = Slice.of_instances trace (instances t)
