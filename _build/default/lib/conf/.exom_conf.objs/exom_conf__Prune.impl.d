lib/conf/prune.ml: Array Confidence Exom_ddg Exom_interp List Queue
