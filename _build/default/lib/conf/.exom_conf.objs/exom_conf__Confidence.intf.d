lib/conf/confidence.mli: Exom_cfg Exom_interp Set
