lib/conf/reval.mli: Exom_interp Exom_lang
