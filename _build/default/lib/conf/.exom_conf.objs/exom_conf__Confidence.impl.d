lib/conf/confidence.ml: Array Exom_cfg Exom_ddg Exom_interp List Queue Reval Set
