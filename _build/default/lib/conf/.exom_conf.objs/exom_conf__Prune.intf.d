lib/conf/prune.mli: Confidence Exom_ddg Exom_interp
