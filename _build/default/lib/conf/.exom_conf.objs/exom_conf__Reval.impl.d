lib/conf/reval.ml: Exom_interp Exom_lang List
