(** Best-effort re-evaluation of a statement instance with one use
    substituted — the alt-set oracle of confidence analysis.

    [run stmt inst ~cell ~value] replays [inst]'s recorded reads with
    [cell] bound to [value] and returns the statement's principal value:
    - [Known v]: the statement would have produced [v];
    - [Unknown]: the replay cannot be trusted (substituted call
      argument, [input()], divergent short-circuit, moved array read);
      callers must treat the candidate as unconstrained;
    - [Rejected]: the candidate is impossible (division by zero, store
      index moved): exclude it from the alt set. *)

type result = Known of Exom_interp.Value.t | Unknown | Rejected

val run :
  Exom_lang.Ast.stmt ->
  Exom_interp.Trace.instance ->
  cell:Exom_interp.Cell.t ->
  value:Exom_interp.Value.t ->
  result
