type align = Left | Right

type t = {
  headers : string list;
  aligns : align list;
  mutable rows : string list list;  (* reversed *)
}

let create ?aligns headers =
  let aligns =
    match aligns with
    | Some a ->
      if List.length a <> List.length headers then
        invalid_arg "Table.create: aligns/headers length mismatch";
      a
    | None -> List.map (fun _ -> Left) headers
  in
  { headers; aligns; rows = [] }

let add_row t row =
  if List.length row <> List.length t.headers then
    invalid_arg "Table.add_row: wrong number of columns";
  t.rows <- row :: t.rows

let widths t =
  let update acc row =
    List.map2 (fun w cell -> max w (String.length cell)) acc row
  in
  List.fold_left update
    (List.map String.length t.headers)
    (List.rev t.rows)

let pad align width s =
  let fill = String.make (width - String.length s) ' ' in
  match align with Left -> s ^ fill | Right -> fill ^ s

let render_row aligns ws row =
  let cells = List.map2 (fun (a, w) s -> pad a w s)
      (List.combine aligns ws) row in
  "| " ^ String.concat " | " cells ^ " |"

let render t =
  let ws = widths t in
  let sep =
    "|" ^ String.concat "|" (List.map (fun w -> String.make (w + 2) '-') ws)
    ^ "|"
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (render_row t.aligns ws t.headers);
  Buffer.add_char buf '\n';
  Buffer.add_string buf sep;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (render_row t.aligns ws row);
      Buffer.add_char buf '\n')
    (List.rev t.rows);
  Buffer.contents buf

let print t = print_string (render t)
