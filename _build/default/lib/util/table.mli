(** Plain-text tables, used by the benchmark harness to print the rows
    of the paper's Tables 1-4. *)

type align = Left | Right

type t

(** [create ?aligns headers] starts a table; [aligns] defaults to all
    [Left] and must match the number of headers. *)
val create : ?aligns:align list -> string list -> t

(** Raises [Invalid_argument] on column-count mismatch. *)
val add_row : t -> string list -> unit

val render : t -> string
val print : t -> unit
