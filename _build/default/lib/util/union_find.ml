type 'a t = {
  parent : ('a, 'a) Hashtbl.t;
  rank : ('a, int) Hashtbl.t;
}

let create () = { parent = Hashtbl.create 16; rank = Hashtbl.create 16 }

let rec find t x =
  match Hashtbl.find_opt t.parent x with
  | None -> x
  | Some p when p = x -> x
  | Some p ->
    let root = find t p in
    Hashtbl.replace t.parent x root;
    root

let rank t x = Option.value ~default:0 (Hashtbl.find_opt t.rank x)

let union t x y =
  let rx = find t x and ry = find t y in
  if rx <> ry then begin
    let kx = rank t rx and ky = rank t ry in
    if kx < ky then Hashtbl.replace t.parent rx ry
    else if kx > ky then Hashtbl.replace t.parent ry rx
    else begin
      Hashtbl.replace t.parent ry rx;
      Hashtbl.replace t.rank rx (kx + 1)
    end
  end

let same t x y = find t x = find t y
