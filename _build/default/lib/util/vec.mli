(** Growable arrays (OCaml 5.1 predates stdlib [Dynarray]).

    The [dummy] element passed at creation fills unused capacity; it is
    never observable through the API. *)

type 'a t

val create : dummy:'a -> 'a t
val length : 'a t -> int
val push : 'a t -> 'a -> unit

(** [get]/[set] raise [Invalid_argument] when out of bounds. *)
val get : 'a t -> int -> 'a

val set : 'a t -> int -> 'a -> unit
val clear : 'a t -> unit
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val to_list : 'a t -> 'a list
val of_list : dummy:'a -> 'a list -> 'a t
val exists : ('a -> bool) -> 'a t -> bool
val find_opt : ('a -> bool) -> 'a t -> 'a option
