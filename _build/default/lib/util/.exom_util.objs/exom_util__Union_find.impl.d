lib/util/union_find.ml: Hashtbl Option
