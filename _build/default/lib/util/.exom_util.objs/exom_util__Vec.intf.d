lib/util/vec.mli:
