lib/util/table.mli:
