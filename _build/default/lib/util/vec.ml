type 'a t = { mutable data : 'a array; mutable len : int; dummy : 'a }

let create ~dummy = { data = Array.make 16 dummy; len = 0; dummy }

let length t = t.len

let ensure_capacity t n =
  if n > Array.length t.data then begin
    let cap = max n (2 * Array.length t.data) in
    let data = Array.make cap t.dummy in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end

let push t x =
  ensure_capacity t (t.len + 1);
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get: index out of bounds";
  t.data.(i)

let set t i x =
  if i < 0 || i >= t.len then invalid_arg "Vec.set: index out of bounds";
  t.data.(i) <- x

let clear t = t.len <- 0

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let fold_left f init t =
  let acc = ref init in
  iter (fun x -> acc := f !acc x) t;
  !acc

let to_list t = List.rev (fold_left (fun acc x -> x :: acc) [] t)

let of_list ~dummy xs =
  let t = create ~dummy in
  List.iter (push t) xs;
  t

let exists p t =
  let rec loop i = i < t.len && (p t.data.(i) || loop (i + 1)) in
  loop 0

let find_opt p t =
  let rec loop i =
    if i >= t.len then None
    else if p t.data.(i) then Some t.data.(i)
    else loop (i + 1)
  in
  loop 0
