(** Union-find over hashable keys, with path compression and union by
    rank.  Elements need not be registered before use: an unseen element
    is its own singleton class. *)

type 'a t

val create : unit -> 'a t
val find : 'a t -> 'a -> 'a
val union : 'a t -> 'a -> 'a -> unit
val same : 'a t -> 'a -> 'a -> bool
