(** Value perturbation (§5 of the paper): expose dependences that
    predicate switching misses — nested predicates testing the same
    definition — by re-executing with the definition's value replaced.

    Costs one re-execution per candidate value, against predicate
    switching's single binary flip; candidates come from the value
    profile. *)

(** [verify_value s ~d ~candidate ~u]: re-execute with definition
    instance [d] producing [candidate]; [u] depends on [d] if its
    counterpart disappears or changes value.  Strong when the failure
    point then shows the expected value. *)
val verify_value :
  Session.t ->
  d:int ->
  candidate:Exom_interp.Value.t ->
  u:int ->
  Verdict.t

(** Search the definition's profiled value range; strongest verdict
    wins, [Not_id] if nothing is affected. *)
val verify_over_profile : Session.t -> d:int -> u:int -> Verdict.t
