lib/core/verify.mli: Session Verdict
