lib/core/perturb.ml: Exom_align Exom_interp List Session Sys Verdict
