lib/core/demand.mli: Exom_ddg Oracle Session Verify
