lib/core/oracle.mli: Exom_interp Exom_lang
