lib/core/verdict.ml: Fmt
