lib/core/oracle.ml: Exom_align Exom_interp Exom_lang Hashtbl List
