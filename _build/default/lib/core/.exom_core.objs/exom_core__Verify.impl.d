lib/core/verify.ml: Exom_align Exom_ddg Exom_interp Hashtbl List Session Sys Verdict
