lib/core/critical.mli: Session
