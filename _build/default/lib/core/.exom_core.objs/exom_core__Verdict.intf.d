lib/core/verdict.mli: Fmt
