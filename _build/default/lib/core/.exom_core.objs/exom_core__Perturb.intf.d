lib/core/perturb.mli: Exom_interp Session Verdict
