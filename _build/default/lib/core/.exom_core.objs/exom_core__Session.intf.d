lib/core/session.mli: Exom_align Exom_cfg Exom_ddg Exom_interp Exom_lang Hashtbl Verdict
