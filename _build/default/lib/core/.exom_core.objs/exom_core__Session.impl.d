lib/core/session.ml: Exom_align Exom_cfg Exom_ddg Exom_interp Exom_lang Hashtbl List Verdict
