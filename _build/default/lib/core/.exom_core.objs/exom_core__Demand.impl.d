lib/core/demand.ml: Exom_conf Exom_ddg Exom_interp Hashtbl List Option Oracle Session Verdict Verify
