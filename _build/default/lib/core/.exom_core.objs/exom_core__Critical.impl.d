lib/core/critical.ml: Exom_interp List Session
