module Align = Exom_align.Align
module Ast = Exom_lang.Ast
module Interp = Exom_interp.Interp
module Region = Exom_align.Region
module Trace = Exom_interp.Trace
module Value = Exom_interp.Value

(* The stand-in for the programmer in the interactive pruning step of
   Algorithm 2 ("the programmer gives feedback to the system if he
   considers the presented statement instance contains benign program
   state").

   The oracle runs the corrected program on the same input, aligns its
   execution with the failing one, and deems an instance benign iff its
   aligned counterpart exists and carries the same value — i.e. the
   instance's program state is untouched by the fault.  Alignment works
   across the two program versions because faults are expression-level
   mutations: statement ids and region shapes coincide, only values and
   branch outcomes differ. *)

type t = {
  benign : int -> bool;
  expected_outputs : int list;
}

(* The corrected program's output stream, for building the session's
   expected outputs before its trace exists. *)
let expected ~correct_prog ~input =
  Interp.output_values (Interp.run ~tracing:false correct_prog ~input)

let create ~faulty_trace ~correct_prog ~input =
  let correct_run = Interp.run correct_prog ~input in
  let correct_trace =
    match correct_run.Interp.trace with
    | Some t -> t
    | None -> invalid_arg "Oracle.create: tracing disabled"
  in
  let reg_faulty = Region.build faulty_trace in
  let reg_correct = Region.build correct_trace in
  let cache = Hashtbl.create 256 in
  (* Inspectable values only: array references and unit say nothing a
     programmer could compare. *)
  let comparable v =
    match v with Value.Vint _ | Value.Vbool _ -> true
    | Value.Varr _ | Value.Vunit -> false
  in
  let values_agree va vb =
    (not (comparable va)) || (not (comparable vb)) || Value.equal va vb
  in
  let benign idx =
    match Hashtbl.find_opt cache idx with
    | Some b -> b
    | None ->
      let b =
        match Align.to_option (Align.match_root reg_faulty reg_correct ~u:idx) with
        | None -> false
        | Some idx' ->
          (* The instance's observable state is benign only if every
             value it touched agrees with the corrected run: its
             principal value, everything it read, and everything it
             defined (a call statement's own value is unit, but the
             arguments it passes are program state too). *)
          let a = Trace.get faulty_trace idx in
          let b = Trace.get correct_trace idx' in
          values_agree a.Trace.value b.Trace.value
          && List.length a.Trace.uses = List.length b.Trace.uses
          && List.for_all2
               (fun (_, _, va) (_, _, vb) -> values_agree va vb)
               a.Trace.uses b.Trace.uses
          && List.length a.Trace.defs = List.length b.Trace.defs
          && List.for_all2
               (fun (_, va) (_, vb) -> values_agree va vb)
               a.Trace.defs b.Trace.defs
      in
      Hashtbl.replace cache idx b;
      b
  in
  { benign; expected_outputs = Interp.output_values correct_run }

let benign t idx = t.benign idx
let expected_outputs t = t.expected_outputs
