(** Verification outcomes: strong implicit dependence (Definition 4),
    implicit dependence (Definition 2), or none. *)

type t = Strong_id | Id | Not_id

(** A verification's classification plus whether the switch observably
    changed the target's value; only value-affecting edges let a
    vouched-for target pin the predicate during confidence
    propagation. *)
type result = { verdict : t; value_affected : bool }

val to_string : t -> string
val pp : t Fmt.t
