(* The three outcomes of one implicit-dependence verification
   (VerifyDep in Algorithm 2 of the paper). *)
type t = Strong_id | Id | Not_id

(* One verification's full outcome: the classification plus whether the
   switch observably changed the target's value (vs merely rerouting a
   definition that carried the same value) — the distinction that
   decides whether confidence may pin the predicate (Figure 5). *)
type result = { verdict : t; value_affected : bool }

let to_string = function
  | Strong_id -> "STRONG_ID"
  | Id -> "ID"
  | Not_id -> "NOT_ID"

let pp ppf v = Fmt.string ppf (to_string v)
