module Interp = Exom_interp.Interp
module Trace = Exom_interp.Trace

(* The predecessor technique (Zhang-Gupta-Gupta, ICSE'06 [18], discussed
   in the paper's §6): switch each predicate instance in turn and call
   it *critical* when the switched run produces exactly the expected
   output.  The paper contrasts its own use of switching — exposing one
   implicit dependence at a time, with alignment and demand-driven
   selection — against this whole-output search, which needs one
   re-execution per candidate instance and fails entirely when no single
   branch flip can repair the output (e.g. Figure 1's gzip bug, where
   the flags bit and the name bytes sit under two different instances of
   the faulty condition). *)

type result = {
  critical : int list;  (* instance indices, in discovery order *)
  executions : int;
}

(* Candidate ordering: last-executed-first-switched, the heuristic of
   [18] (the latest decisions are the most likely culprits). *)
let candidates trace =
  let preds = ref [] in
  Trace.iter
    (fun inst ->
      if Trace.is_predicate inst then preds := inst.Trace.idx :: !preds)
    trace;
  !preds

let find ?(cap = max_int) ?(stop_at_first = true) (s : Session.t) ~expected =
  let trace = s.Session.trace in
  let critical = ref [] in
  let executions = ref 0 in
  let rec scan = function
    | [] -> ()
    | p :: rest ->
      if !executions < cap && ((not stop_at_first) || !critical = []) then begin
        let inst = Trace.get trace p in
        let switch =
          { Interp.switch_sid = inst.Trace.sid; switch_occ = inst.Trace.occ }
        in
        incr executions;
        let run =
          Interp.run ~switch ~tracing:false ~budget:s.Session.budget
            s.Session.prog ~input:s.Session.input
        in
        (match run.Interp.outcome with
        | Ok () when Interp.output_values run = expected ->
          critical := p :: !critical
        | Ok () | Error _ -> ());
        scan rest
      end
  in
  scan (candidates trace);
  { critical = List.rev !critical; executions = !executions }
