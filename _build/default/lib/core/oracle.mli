(** The programmer stand-in for the interactive pruning step: an
    instance is benign iff it aligns with the corrected program's run on
    the same input and carries the same value. *)

type t

(** Output stream of the corrected program (the session's [expected]). *)
val expected : correct_prog:Exom_lang.Ast.program -> input:int list -> int list

val create :
  faulty_trace:Exom_interp.Trace.t ->
  correct_prog:Exom_lang.Ast.program ->
  input:int list ->
  t

val benign : t -> int -> bool
val expected_outputs : t -> int list
