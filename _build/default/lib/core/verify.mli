(** Implicit-dependence verification by predicate switching (VerifyDep
    of Algorithm 2; Definitions 2 and 4).

    Each uncached call re-executes the program once with the candidate
    predicate instance's branch outcome flipped, aligns the two
    executions, and classifies the dependence.  Verification counts and
    wall time accumulate on the session (Tables 3 and 4). *)

(** How Definition 2's "explicit dependence path between p' and u'" is
    decided: the paper's edge approximation (default; unsafe in the
    nested-predicate corner of §3.2 but cheap), or the exact backward
    slice membership test (safe, one slice per verification). *)
type mode = Edge_approximation | Path_exact

(** [verify s ~p ~u]: is there an implicit dependence from predicate
    instance [p] to use instance [u]?  Cached per (p, u); do not mix
    modes on one session. *)
val verify : ?mode:mode -> Session.t -> p:int -> u:int -> Verdict.t

(** Like {!verify}, also reporting whether the switch observably changed
    the target's value (see {!Verdict.result}). *)
val verify_full : ?mode:mode -> Session.t -> p:int -> u:int -> Verdict.result
