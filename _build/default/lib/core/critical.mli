(** Critical-predicate search — the ICSE'06 predecessor [18] the paper
    compares against in §6: a predicate instance is critical when
    switching it alone makes the program produce exactly the [expected]
    output.

    One untraced re-execution per candidate (last-executed first); the
    comparison bench shows where this whole-output search fails on
    omission errors that no single flip can repair. *)

type result = {
  critical : int list;  (** critical predicate instances, discovery order *)
  executions : int;  (** re-executions performed *)
}

val find :
  ?cap:int ->
  ?stop_at_first:bool ->
  Session.t ->
  expected:int list ->
  result
