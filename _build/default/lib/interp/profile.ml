module Iset = Set.Make (Int)

type t = {
  values : (int, Iset.t) Hashtbl.t;  (* sid -> int values produced *)
  bools : (int, bool list) Hashtbl.t;  (* sid -> distinct outcomes *)
  mutable runs : int;
}

let create () = { values = Hashtbl.create 64; bools = Hashtbl.create 16; runs = 0 }

let add_value t sid n =
  let set = Option.value ~default:Iset.empty (Hashtbl.find_opt t.values sid) in
  Hashtbl.replace t.values sid (Iset.add n set)

let add_bool t sid b =
  let seen = Option.value ~default:[] (Hashtbl.find_opt t.bools sid) in
  if not (List.mem b seen) then Hashtbl.replace t.bools sid (b :: seen)

let record_trace t trace =
  Trace.iter
    (fun inst ->
      match inst.Trace.kind with
      | Trace.Kpredicate b -> add_bool t inst.Trace.sid b
      | Trace.Kassign | Trace.Koutput | Trace.Kreturn -> (
        match inst.Trace.value with
        | Value.Vint n -> add_value t inst.Trace.sid n
        | Value.Vbool b -> add_bool t inst.Trace.sid b
        | Value.Varr _ | Value.Vunit -> ())
      | Trace.Kcall | Trace.Kother -> ())
    trace

let add_run t (run : Interp.run) =
  t.runs <- t.runs + 1;
  Option.iter (record_trace t) run.Interp.trace

let collect prog inputs =
  let t = create () in
  List.iter (fun input -> add_run t (Interp.run prog ~input)) inputs;
  t

let int_range t sid =
  Option.value ~default:Iset.empty (Hashtbl.find_opt t.values sid)

(* The value domain of a statement, as the paper approximates it "by the
   value profile".  The observed value is always included so that a range
   is never empty for a statement that executed in the failing run. *)
let range t sid ~observed =
  let base = int_range t sid in
  match observed with
  | Value.Vint n -> Iset.elements (Iset.add n base)
  | Value.Vbool _ | Value.Varr _ | Value.Vunit -> Iset.elements base

let range_size t sid ~observed = List.length (range t sid ~observed)

let runs t = t.runs
