(* Plain-text serialization of execution traces, one instance per line:

     idx sid occ parent kind value | use cell:def:value ... | def cell:value ...

   The format is line-oriented and whitespace-separated so traces can be
   grepped, diffed and post-processed outside the process that produced
   them (the CLI's --dump-trace), and round-trips exactly. *)

let string_of_value = function
  | Value.Vint n -> "i" ^ string_of_int n
  | Value.Vbool b -> if b then "bt" else "bf"
  | Value.Varr id -> "a" ^ string_of_int id
  | Value.Vunit -> "u"

let value_of_string s =
  let num off = int_of_string (String.sub s off (String.length s - off)) in
  match s with
  | "u" -> Value.Vunit
  | "bt" -> Value.Vbool true
  | "bf" -> Value.Vbool false
  | _ when s.[0] = 'i' -> Value.Vint (num 1)
  | _ when s.[0] = 'a' -> Value.Varr (num 1)
  | _ -> failwith ("Trace_io: bad value " ^ s)

let string_of_cell = function
  | Cell.Global x -> "G." ^ x
  | Cell.Local (fid, x) -> Printf.sprintf "L.%d.%s" fid x
  | Cell.Elem (arr, i) -> Printf.sprintf "E.%d.%d" arr i
  | Cell.Ret fid -> Printf.sprintf "R.%d" fid

let cell_of_string s =
  match String.split_on_char '.' s with
  | "G" :: rest -> Cell.Global (String.concat "." rest)
  | "L" :: fid :: rest -> Cell.Local (int_of_string fid, String.concat "." rest)
  | [ "E"; arr; i ] -> Cell.Elem (int_of_string arr, int_of_string i)
  | [ "R"; fid ] -> Cell.Ret (int_of_string fid)
  | _ -> failwith ("Trace_io: bad cell " ^ s)

let string_of_kind = function
  | Trace.Kassign -> "assign"
  | Trace.Kpredicate true -> "pred+"
  | Trace.Kpredicate false -> "pred-"
  | Trace.Koutput -> "output"
  | Trace.Kcall -> "call"
  | Trace.Kreturn -> "return"
  | Trace.Kother -> "other"

let kind_of_string = function
  | "assign" -> Trace.Kassign
  | "pred+" -> Trace.Kpredicate true
  | "pred-" -> Trace.Kpredicate false
  | "output" -> Trace.Koutput
  | "call" -> Trace.Kcall
  | "return" -> Trace.Kreturn
  | "other" -> Trace.Kother
  | s -> failwith ("Trace_io: bad kind " ^ s)

let write_instance buf (inst : Trace.instance) =
  Buffer.add_string buf
    (Printf.sprintf "%d %d %d %d %s %s |" inst.Trace.idx inst.Trace.sid
       inst.Trace.occ inst.Trace.parent
       (string_of_kind inst.Trace.kind)
       (string_of_value inst.Trace.value));
  List.iter
    (fun (c, d, v) ->
      Buffer.add_string buf
        (Printf.sprintf " %s:%d:%s" (string_of_cell c) d (string_of_value v)))
    inst.Trace.uses;
  Buffer.add_string buf " |";
  List.iter
    (fun (c, v) ->
      Buffer.add_string buf
        (Printf.sprintf " %s:%s" (string_of_cell c) (string_of_value v)))
    inst.Trace.defs;
  Buffer.add_char buf '\n'

let to_string trace =
  let buf = Buffer.create 4096 in
  Trace.iter (write_instance buf) trace;
  Buffer.contents buf

(* [cell:def:value] — cells may contain dots but not colons. *)
let parse_use s =
  match String.split_on_char ':' s with
  | [ c; d; v ] -> (cell_of_string c, int_of_string d, value_of_string v)
  | _ -> failwith ("Trace_io: bad use " ^ s)

let parse_def s =
  match String.split_on_char ':' s with
  | [ c; v ] -> (cell_of_string c, value_of_string v)
  | _ -> failwith ("Trace_io: bad def " ^ s)

let parse_line trace line =
  let words =
    String.split_on_char ' ' line |> List.filter (fun w -> w <> "")
  in
  match words with
  | idx :: sid :: occ :: parent :: kind :: value :: "|" :: rest ->
    let rec split_uses acc = function
      | "|" :: defs -> (List.rev acc, defs)
      | u :: more -> split_uses (parse_use u :: acc) more
      | [] -> failwith "Trace_io: missing defs separator"
    in
    let uses, defs = split_uses [] rest in
    let idx' =
      Trace.reserve trace ~sid:(int_of_string sid) ~occ:(int_of_string occ)
        ~parent:(int_of_string parent)
    in
    if idx' <> int_of_string idx then
      failwith "Trace_io: non-contiguous instance indices";
    Trace.fill trace idx' ~kind:(kind_of_string kind) ~uses
      ~defs:(List.map parse_def defs)
      ~value:(value_of_string value)
  | [] -> ()
  | _ -> failwith ("Trace_io: bad line " ^ line)

let of_string s =
  let trace = Trace.create () in
  List.iter
    (fun line -> if String.trim line <> "" then parse_line trace line)
    (String.split_on_char '\n' s);
  trace

let save path trace =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string trace))

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))
