type t = Vint of int | Vbool of bool | Varr of int | Vunit

let to_string = function
  | Vint n -> string_of_int n
  | Vbool b -> string_of_bool b
  | Varr id -> Printf.sprintf "<array #%d>" id
  | Vunit -> "()"

let pp ppf v = Fmt.string ppf (to_string v)

let equal (a : t) (b : t) = a = b

let as_int = function
  | Vint n -> n
  | v -> invalid_arg ("Value.as_int: " ^ to_string v)

let as_bool = function
  | Vbool b -> b
  | v -> invalid_arg ("Value.as_bool: " ^ to_string v)

let as_array = function
  | Varr id -> id
  | v -> invalid_arg ("Value.as_array: " ^ to_string v)

let default_of_typ = function
  | Exom_lang.Ast.Tint -> Vint 0
  | Exom_lang.Ast.Tbool -> Vbool false
  | Exom_lang.Ast.Tarray -> Varr (-1)  (* null array; dereference is an error *)
  | Exom_lang.Ast.Tvoid -> Vunit
