(** Execution traces: the dynamic dependence information the technique
    consumes.

    A trace is a sequence of statement *instances* in execution-start
    order.  Each instance records its static statement id ([sid]), its
    occurrence count ([occ], 1-based: the [occ]-th execution of [sid]),
    its *control parent* (the instance index of the predicate / call
    instance whose region structurally encloses it; [-1] for top level),
    the cells it read together with their defining instances and observed
    values, the cells it defined, and its principal value (assigned
    value, printed value, branch outcome, or return value).

    Because instance slots are reserved when a statement *starts*
    executing, a statement containing calls appears in the trace before
    its callees' instances — matching the trace layout of Figure 2 of
    the paper — and its [uses] may reference later instances (return
    cells). *)

type ikind =
  | Kassign
  | Kpredicate of bool  (** branch outcome, after any switching *)
  | Koutput
  | Kcall  (** a statement that (also) passes parameters to a callee *)
  | Kreturn
  | Kother

type instance = {
  idx : int;
  sid : int;
  occ : int;
  parent : int;
  mutable kind : ikind;
  mutable uses : (Cell.t * int * Value.t) list;
      (** cell read, defining instance index ([-1] if the cell was never
          written, e.g. a fresh array element), value observed *)
  mutable defs : (Cell.t * Value.t) list;
  mutable value : Value.t;
}

type t

val create : unit -> t
val length : t -> int
val get : t -> int -> instance

(** Reserve the next instance slot for the [occ]-th execution of [sid]
    and return its index; [fill] completes it once the statement finishes
    evaluating.  The interpreter supplies occurrence counts (it tracks
    them even when tracing is off, for predicate switching). *)
val reserve : t -> sid:int -> occ:int -> parent:int -> int

val fill :
  t ->
  int ->
  kind:ikind ->
  uses:(Cell.t * int * Value.t) list ->
  defs:(Cell.t * Value.t) list ->
  value:Value.t ->
  unit

(** Number of executed instances of a statement. *)
val occurrences : t -> int -> int

val iter : (instance -> unit) -> t -> unit
val find_instance : t -> sid:int -> occ:int -> instance option

(** [children t] precomputes the region tree: [children t idx] lists the
    instances whose control parent is [idx], in execution order; pass a
    negative index for the top-level instances. *)
val children : t -> int -> int list

val is_predicate : instance -> bool
val branch_of : instance -> bool option
val pp_instance : instance Fmt.t
