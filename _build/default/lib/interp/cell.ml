type t =
  | Global of string
  | Local of int * string
  | Elem of int * int
  | Ret of int

let to_string = function
  | Global x -> x
  | Local (frame, x) -> Printf.sprintf "%s@f%d" x frame
  | Elem (arr, i) -> Printf.sprintf "arr%d[%d]" arr i
  | Ret frame -> Printf.sprintf "ret@f%d" frame

let pp ppf c = Fmt.string ppf (to_string c)

let equal (a : t) (b : t) = a = b

(** Static variable class of a cell: the name the dependence analyses use
    ([None] for return cells, which have no static counterpart). *)
let static_var = function
  | Global x | Local (_, x) -> Some x
  | Elem _ | Ret _ -> None
