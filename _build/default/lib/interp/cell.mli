(** Abstract memory cells: the unit of dynamic data dependence.

    - [Global x]: a global variable;
    - [Local (frame, x)]: variable [x] in stack frame [frame] (frame ids
      are allocated deterministically in call order);
    - [Elem (arr, i)]: element [i] of array [arr];
    - [Ret frame]: the anonymous cell carrying frame [frame]'s return
      value to its caller. *)

type t =
  | Global of string
  | Local of int * string
  | Elem of int * int
  | Ret of int

val to_string : t -> string
val pp : t Fmt.t
val equal : t -> t -> bool
val static_var : t -> string option
