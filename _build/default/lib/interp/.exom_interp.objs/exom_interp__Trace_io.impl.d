lib/interp/trace_io.ml: Buffer Cell Fun List Printf String Trace Value
