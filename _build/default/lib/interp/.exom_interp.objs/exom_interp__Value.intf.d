lib/interp/value.mli: Exom_lang Fmt
