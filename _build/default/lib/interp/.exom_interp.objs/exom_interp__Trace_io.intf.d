lib/interp/trace_io.mli: Trace
