lib/interp/interp.mli: Exom_lang Trace Value
