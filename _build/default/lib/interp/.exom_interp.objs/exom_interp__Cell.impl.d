lib/interp/cell.ml: Fmt Printf
