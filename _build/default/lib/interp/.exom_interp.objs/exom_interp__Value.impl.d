lib/interp/value.ml: Exom_lang Fmt Printf
