lib/interp/trace.ml: Array Cell Exom_util Fmt Hashtbl Option Printf Value
