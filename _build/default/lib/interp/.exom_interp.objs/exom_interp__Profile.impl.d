lib/interp/profile.ml: Hashtbl Int Interp List Option Set Trace Value
