lib/interp/trace.mli: Cell Fmt Value
