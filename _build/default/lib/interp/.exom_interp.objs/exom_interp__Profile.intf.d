lib/interp/profile.mli: Exom_lang Interp Value
