lib/interp/cell.mli: Fmt
