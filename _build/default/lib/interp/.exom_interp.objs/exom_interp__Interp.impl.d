lib/interp/interp.ml: Array Cell Exom_lang Exom_util Fmt Hashtbl List Option Trace Value
