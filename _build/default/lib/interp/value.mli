(** Runtime values of MCL.  Arrays are represented by ids into the
    interpreter's array store; ids are allocated deterministically, so
    two executions of the same program on the same input assign the same
    ids in the common prefix (which the alignment analyses rely on). *)

type t = Vint of int | Vbool of bool | Varr of int | Vunit

val to_string : t -> string
val pp : t Fmt.t
val equal : t -> t -> bool

(** Partial projections; raise [Invalid_argument] on the wrong
    constructor (the typechecker rules this out for checked programs). *)
val as_int : t -> int

val as_bool : t -> bool
val as_array : t -> int

(** Value of an uninitialized declaration: [0], [false], or the null
    array (id [-1], whose dereference is a runtime error). *)
val default_of_typ : Exom_lang.Ast.typ -> t
