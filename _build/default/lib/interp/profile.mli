(** Value profiles: the per-statement value domains collected by running
    the program over a passing test suite.  The paper's confidence
    analysis [19] approximates the range of a definition "by the value
    profile"; ranges feed the confidence formula
    [C = 1 - log(|alt|)/log(|range|)]. *)

type t

val create : unit -> t

(** Record all values produced by a traced run. *)
val add_run : t -> Interp.run -> unit

(** [collect prog inputs] runs [prog] on every input and accumulates the
    profile. *)
val collect : Exom_lang.Ast.program -> int list list -> t

(** Profiled int domain of a statement, with [observed] (the value seen
    in the failing run) always included.  Sorted, duplicate-free. *)
val range : t -> int -> observed:Value.t -> int list

val range_size : t -> int -> observed:Value.t -> int
val runs : t -> int
