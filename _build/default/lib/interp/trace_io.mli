(** Plain-text (de)serialization of execution traces: one instance per
    line, greppable and diffable, exact round trip.  Used by the CLI's
    [--dump-trace] and by offline analyses. *)

val to_string : Trace.t -> string

(** Raises [Failure] on malformed input. *)
val of_string : string -> Trace.t

val save : string -> Trace.t -> unit
val load : string -> Trace.t
