module Vec = Exom_util.Vec

type ikind =
  | Kassign
  | Kpredicate of bool
  | Koutput
  | Kcall
  | Kreturn
  | Kother

type instance = {
  idx : int;
  sid : int;
  occ : int;
  parent : int;
  mutable kind : ikind;
  mutable uses : (Cell.t * int * Value.t) list;
  mutable defs : (Cell.t * Value.t) list;
  mutable value : Value.t;
}

let dummy_instance =
  { idx = -1; sid = -1; occ = 0; parent = -1; kind = Kother; uses = [];
    defs = []; value = Value.Vunit }

type t = {
  instances : instance Vec.t;
  occ_counts : (int, int) Hashtbl.t;  (* sid -> number of instances so far *)
}

let create () =
  { instances = Vec.create ~dummy:dummy_instance; occ_counts = Hashtbl.create 64 }

let length t = Vec.length t.instances

let get t idx = Vec.get t.instances idx

let reserve t ~sid ~occ ~parent =
  Hashtbl.replace t.occ_counts sid occ;
  let idx = Vec.length t.instances in
  Vec.push t.instances
    { idx; sid; occ; parent; kind = Kother; uses = []; defs = [];
      value = Value.Vunit };
  idx

let fill t idx ~kind ~uses ~defs ~value =
  let inst = Vec.get t.instances idx in
  inst.kind <- kind;
  inst.uses <- uses;
  inst.defs <- defs;
  inst.value <- value

let occurrences t sid =
  Option.value ~default:0 (Hashtbl.find_opt t.occ_counts sid)

let iter f t = Vec.iter f t.instances

let find_instance t ~sid ~occ =
  Vec.find_opt (fun i -> i.sid = sid && i.occ = occ) t.instances

(* Children lists, in trace (= execution) order.  Instances with parent -1
   are roots. *)
let children t =
  let n = length t in
  let kids = Array.make (n + 1) [] in
  (* slot n is the virtual root *)
  for idx = n - 1 downto 0 do
    let inst = get t idx in
    let slot = if inst.parent < 0 then n else inst.parent in
    kids.(slot) <- idx :: kids.(slot)
  done;
  fun idx -> if idx < 0 then kids.(n) else kids.(idx)

let is_predicate inst =
  match inst.kind with Kpredicate _ -> true | _ -> false

let branch_of inst =
  match inst.kind with Kpredicate b -> Some b | _ -> None

let pp_instance ppf inst =
  let kind =
    match inst.kind with
    | Kassign -> "assign"
    | Kpredicate b -> Printf.sprintf "pred(%b)" b
    | Koutput -> "output"
    | Kcall -> "call"
    | Kreturn -> "return"
    | Kother -> "other"
  in
  Fmt.pf ppf "#%d s%d/%d %s parent=%d value=%a" inst.idx inst.sid inst.occ kind
    inst.parent Value.pp inst.value
