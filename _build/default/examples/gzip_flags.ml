(* Figure 1 of the paper: the gzip save_orig_name bug, walked through
   step by step — the four computation steps listed at the end of the
   paper's §3.2.

   Run with: dune exec examples/gzip_flags.exe *)

module Typecheck = Exom_lang.Typecheck
module Trace = Exom_interp.Trace
module Slice = Exom_ddg.Slice
module Relevant = Exom_ddg.Relevant
module Session = Exom_core.Session
module Oracle = Exom_core.Oracle
module Demand = Exom_core.Demand
module Verify = Exom_core.Verify
module Verdict = Exom_core.Verdict
module Proginfo = Exom_cfg.Proginfo
module Value = Exom_interp.Value

(* The shape of the paper's Figure 1: S1 sets save_orig_name (wrongly
   false), S4/S5 OR the ORIG_NAME bit into flags, S6 stores flags into
   outbuf, S7/S8 append the name bytes, S9/S10 print outbuf. *)
let template son =
  Printf.sprintf
    {|
int save_orig_name = %d;
int flags = 0;
void main() {
  int[] outbuf = new_array(4);
  int outcnt = 0;
  int deflated = 8;
  outbuf[outcnt] = deflated;
  outcnt = outcnt + 1;
  if (save_orig_name == 1) {
    flags = flags + 32;
  }
  outbuf[outcnt] = flags;
  outcnt = outcnt + 1;
  if (save_orig_name == 1) {
    outbuf[outcnt] = 127;
    outcnt = outcnt + 1;
  }
  print(outbuf[0]);
  print(outbuf[1]);
}
|}
    son

let line_sid prog line =
  let found = ref (-1) in
  Exom_lang.Ast.iter_program
    (fun s ->
      if Exom_lang.Loc.line s.Exom_lang.Ast.sloc = line && !found < 0 then
        found := s.Exom_lang.Ast.sid)
    prog;
  !found

let () =
  let faulty = Typecheck.parse_and_check (template 0) in
  let correct = Typecheck.parse_and_check (template 1) in
  let expected = Oracle.expected ~correct_prog:correct ~input:[] in
  let session =
    Session.create ~prog:faulty ~input:[] ~expected ~profile_inputs:[ [] ] ()
  in
  let t = session.Session.trace in
  let info = session.Session.info in
  let instance line =
    match Trace.find_instance t ~sid:(line_sid faulty line) ~occ:1 with
    | Some i -> i.Trace.idx
    | None -> failwith "instance not found"
  in
  Printf.printf "The failing run prints %s; the correct output is %s.\n"
    (String.concat " "
       (List.map (fun (_, v) -> string_of_int v) session.Session.run.Exom_interp.Interp.outputs))
    (String.concat " " (List.map string_of_int expected));
  Printf.printf "o_x is the second print; the expected value there is %s.\n\n"
    (match session.Session.vexp with
    | Some v -> Value.to_string v
    | None -> "<none>");

  (* Step 1: the pruned dynamic slice of the wrong output. *)
  let ds = Slice.compute t ~criteria:[ session.Session.wrong_output ] in
  Printf.printf
    "Step 1. The dynamic slice covers lines %s - the root cause (line 2) is \
     absent.\n"
    (String.concat ","
       (List.map (fun s -> string_of_int (Proginfo.line_of_sid info s)) (Slice.sids ds)));

  (* Step 2: PD(S10) = {S7}; verification returns NOT_ID. *)
  let s7 = instance 15 in
  let s10 = session.Session.wrong_output in
  Printf.printf "Step 2. VerifyDep(S7 - the second if - , S10) = %s\n"
    (Verdict.to_string (Verify.verify session ~p:s7 ~u:s10));

  (* Step 3: PD(S6) = {S4}; verification returns STRONG_ID. *)
  let s4 = instance 10 in
  let s6 = instance 13 in
  Printf.printf "Step 3. VerifyDep(S4 - if(save_orig_name) - , S6) = %s\n"
    (Verdict.to_string (Verify.verify session ~p:s4 ~u:s6));
  (let pd = Relevant.pd session.Session.rel s6 in
   Printf.printf "        PD(S6) has %d candidate(s), on line(s) %s\n"
     (List.length pd)
     (String.concat ","
        (List.map
           (fun p ->
             string_of_int (Proginfo.line_of_sid info (Trace.get t p).Trace.sid))
           pd)));

  (* Step 4: the full demand-driven run locates the root cause. *)
  let oracle =
    Oracle.create ~faulty_trace:t ~correct_prog:correct ~input:[]
  in
  let report =
    Demand.locate session ~oracle ~root_sids:[ line_sid faulty 2 ]
  in
  Printf.printf
    "Step 4. After adding the strong implicit edge, the pruned slice covers \
     lines %s\n        (root cause on line 2 %s; %d verifications, %d edge(s)).\n"
    (String.concat ","
       (List.map
          (fun s -> string_of_int (Proginfo.line_of_sid info s))
          (Slice.sids report.Demand.ips)))
    (if report.Demand.found then "LOCATED" else "missed")
    report.Demand.verifications report.Demand.expanded_edges
