(* Figure 4 of the paper: confidence analysis.

       10. a = ...        C = f(range(a)) ?
       20. b = a % 2      C = 1
       30. c = a + 2      C = 0
       40. print(b)       correct
       41. print(c)       wrong

   The correct output at 40 pins b to its observed value (C=1); the
   many-to-one a%2 leaves several values of a plausible, so a's
   confidence lies strictly between 0 and 1, computed against the value
   profile; c reaches only the wrong output and gets 0.

   Run with: dune exec examples/confidence_demo.exe *)

module Typecheck = Exom_lang.Typecheck
module Interp = Exom_interp.Interp
module Trace = Exom_interp.Trace
module Profile = Exom_interp.Profile
module Proginfo = Exom_cfg.Proginfo
module Confidence = Exom_conf.Confidence
module Prune = Exom_conf.Prune
module Slice = Exom_ddg.Slice

let src =
  {|
void main() {
  int a = input();
  int b = a % 2;
  int c = a + 2;
  print(b);
  print(c);
}
|}

let () =
  let prog = Typecheck.parse_and_check src in
  let info = Proginfo.build prog in
  let run = Interp.run prog ~input:[ 5 ] in
  let trace = match run.Interp.trace with Some t -> t | None -> assert false in
  (* value profile over a passing test suite: range(a) = {1,2,3,4,6} + 5 *)
  let profile =
    Profile.collect prog [ [ 1 ]; [ 2 ]; [ 3 ]; [ 4 ]; [ 6 ] ]
  in
  (* the user observes: print(b) correct, print(c) wrong *)
  let correct = [ fst (List.nth run.Interp.outputs 0) ] in
  let wrong = fst (List.nth run.Interp.outputs 1) in
  let conf =
    Confidence.compute info profile trace ~correct ~benign:[] ~implicit:[]
  in
  Printf.printf "input a = 5; outputs: b = %d (correct), c = %d (wrong)\n\n"
    (snd (List.nth run.Interp.outputs 0))
    (snd (List.nth run.Interp.outputs 1));
  Trace.iter
    (fun inst ->
      let line = Proginfo.line_of_sid info inst.Trace.sid in
      let alt =
        match Confidence.alt_set conf inst.Trace.idx with
        | None -> "unconstrained"
        | Some s ->
          Printf.sprintf "{%s}"
            (String.concat ","
               (List.map Exom_interp.Value.to_string
                  (Confidence.Vset.elements s)))
      in
      Printf.printf "line %d  value %-5s  confidence %.3f  alt = %s\n" line
        (Exom_interp.Value.to_string inst.Trace.value)
        (Confidence.confidence conf inst.Trace.idx)
        alt)
    trace;
  print_newline ();
  let slice = Slice.compute trace ~criteria:[ wrong ] in
  let ps = Prune.compute trace ~slice ~conf ~criterion:wrong in
  Printf.printf
    "pruned slice of the wrong output (%d of %d instances), ranked:\n"
    (Prune.size ps) (Slice.dynamic_size slice);
  List.iter
    (fun e ->
      Printf.printf "  line %d (confidence %.3f, distance %d)\n"
        (Proginfo.line_of_sid info (Trace.get trace e.Prune.idx).Trace.sid)
        e.Prune.confidence e.Prune.distance)
    (Prune.entries ps)
