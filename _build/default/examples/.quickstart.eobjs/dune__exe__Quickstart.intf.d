examples/quickstart.mli:
