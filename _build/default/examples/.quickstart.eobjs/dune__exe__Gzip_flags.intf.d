examples/gzip_flags.mli:
