examples/alignment_demo.ml: Exom_align Exom_interp Exom_lang Printf
