examples/alignment_demo.mli:
