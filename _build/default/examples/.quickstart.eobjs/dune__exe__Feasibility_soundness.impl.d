examples/feasibility_soundness.ml: Exom_core Exom_interp Exom_lang Printf
