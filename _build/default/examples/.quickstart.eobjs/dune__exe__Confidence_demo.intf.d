examples/confidence_demo.mli:
