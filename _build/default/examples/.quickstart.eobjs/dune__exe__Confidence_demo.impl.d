examples/confidence_demo.ml: Exom_cfg Exom_conf Exom_ddg Exom_interp Exom_lang List Printf String
