examples/feasibility_soundness.mli:
