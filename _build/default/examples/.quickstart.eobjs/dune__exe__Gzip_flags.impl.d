examples/gzip_flags.ml: Exom_cfg Exom_core Exom_ddg Exom_interp Exom_lang List Printf String
