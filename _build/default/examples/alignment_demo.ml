(* Figures 2 and 3 of the paper: region-based execution alignment.

   Part 1 (Figure 2): switching predicate P makes a while loop execute;
   the use of x afterwards must still be matched — and in the variant
   where the branch also flips an inner predicate, correctly reported
   unmatched.

   Part 2 (Figure 3): a switched guard makes the loop break in its first
   iteration (single-entry-multiple-exit); uses inside the truncated
   region have no counterpart, code after the loop still aligns.

   Run with: dune exec examples/alignment_demo.exe *)

module Ast = Exom_lang.Ast
module Typecheck = Exom_lang.Typecheck
module Interp = Exom_interp.Interp
module Trace = Exom_interp.Trace
module Region = Exom_align.Region
module Align = Exom_align.Align

let line_sid prog line =
  let found = ref (-1) in
  Ast.iter_program
    (fun s ->
      if Exom_lang.Loc.line s.Ast.sloc = line && !found < 0 then
        found := s.Ast.sid)
    prog;
  !found

let traced ?switch prog =
  match (Interp.run ?switch prog ~input:[]).Interp.trace with
  | Some t -> t
  | None -> failwith "no trace"

let render_execution = Region.render_forest

let fig2 =
  {|
int i = 0;
int t = 0;
int x = 0;
int p = 0;
int c1 = 0;
int c2 = 0;
void main() {
  if (p == 1) {
    t = 1;
    x = 5;
  }
  while (i < t) {
    if (c1 == 1) {
      x = 9;
    }
    i = i + 1;
  }
  if (t < 9) {
    if (c2 == 0) {
      print(x);
    }
    print(77);
  }
}
|}

let fig2_c2 =
  {|
int i = 0;
int t = 0;
int x = 0;
int p = 0;
int c1 = 0;
int c2 = 0;
void main() {
  if (p == 1) {
    t = 1;
    x = 5;
    c2 = 1;
  }
  while (i < t) {
    if (c1 == 1) {
      x = 9;
    }
    i = i + 1;
  }
  if (t < 9) {
    if (c2 == 0) {
      print(x);
    }
    print(77);
  }
}
|}

let fig3 =
  {|
int c0 = 0;
int c1 = 1;
int x = 3;
int q = 0;
void main() {
  if (q == 1) {
    c0 = 1;
  }
  int i = 0;
  while (i < 2) {
    if (c0 == 1) {
      break;
    }
    if (c1 == 1) {
      print(x);
    }
    i = i + 1;
  }
  print(50);
}
|}

let describe name src ~switch_line ~use_line =
  let prog = Typecheck.parse_and_check src in
  let t1 = traced prog in
  let p_sid = line_sid prog switch_line in
  let t2 =
    traced ~switch:{ Interp.switch_sid = p_sid; switch_occ = 1 } prog
  in
  let reg1 = Region.build t1 and reg2 = Region.build t2 in
  Printf.printf "--- %s ---\n" name;
  Printf.printf "original regions: %s\n" (render_execution reg1);
  Printf.printf "switched regions: %s\n" (render_execution reg2);
  let p =
    match Trace.find_instance t1 ~sid:p_sid ~occ:1 with
    | Some i -> i.Trace.idx
    | None -> failwith "no predicate instance"
  in
  let use_sid = line_sid prog use_line in
  let n_uses = Trace.occurrences t1 use_sid in
  for occ = 1 to n_uses do
    let u =
      match Trace.find_instance t1 ~sid:use_sid ~occ with
      | Some i -> i.Trace.idx
      | None -> failwith "no use instance"
    in
    match Align.to_option (Align.match_from reg1 reg2 ~p ~u) with
    | Some u' ->
      Printf.printf
        "use on line %d (occ %d): matched at trace index %d, value %s\n"
        use_line occ u'
        (Exom_interp.Value.to_string (Trace.get t2 u').Trace.value)
    | None ->
      Printf.printf "use on line %d (occ %d): NO corresponding instance\n"
        use_line occ
  done;
  print_newline ()

let () =
  (* Figure 2, execution (2): print(x) is matched and carries x = 5. *)
  describe "Figure 2: switching P exposes the loop" fig2 ~switch_line:9
    ~use_line:21;
  (* Figure 2, execution (3): the then-branch also sets c2, so the inner
     if flips and print(x) has no counterpart. *)
  describe "Figure 2(3): c2 also set - the use disappears" fig2_c2
    ~switch_line:9 ~use_line:22;
  (* Figure 3: the break truncates the loop region (sibling
     exhaustion); print(x) has no counterpart, print(50) still does. *)
  describe "Figure 3: single-entry-multiple-exit (break)" fig3 ~switch_line:7
    ~use_line:16;
  describe "Figure 3 (after the loop): still aligned" fig3 ~switch_line:7
    ~use_line:20
