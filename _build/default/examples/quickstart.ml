(* Quickstart: compile an MCL program, execute it under tracing, compute
   a dynamic slice of its output, and locate a seeded execution omission
   error end-to-end.

   Run with: dune exec examples/quickstart.exe *)

module Typecheck = Exom_lang.Typecheck
module Interp = Exom_interp.Interp
module Trace = Exom_interp.Trace
module Slice = Exom_ddg.Slice
module Session = Exom_core.Session
module Oracle = Exom_core.Oracle
module Demand = Exom_core.Demand
module Proginfo = Exom_cfg.Proginfo

(* A program with an execution omission error: [bonus_on] should be 1.
   Because it is 0, the branch adding the bonus is wrongly skipped and
   the printed total is 100 instead of 110.  Classic dynamic slicing
   cannot blame [bonus_on]: no executed dependence connects it to the
   output. *)
let faulty_src =
  {|
int bonus_on = 0;
void main() {
  int base = input();
  int total = base * 10;
  if (bonus_on == 1) {
    total = total + 10;
  }
  print(base);
  print(total);
}
|}

let correct_src =
  {|
int bonus_on = 1;
void main() {
  int base = input();
  int total = base * 10;
  if (bonus_on == 1) {
    total = total + 10;
  }
  print(base);
  print(total);
}
|}

let () =
  (* 1. Compile (parse + typecheck). *)
  let faulty = Typecheck.parse_and_check faulty_src in
  let correct = Typecheck.parse_and_check correct_src in
  let input = [ 10 ] in

  (* 2. Execute under tracing. *)
  let run = Interp.run faulty ~input in
  Printf.printf "faulty run prints:  %s\n"
    (String.concat " " (List.map string_of_int (Interp.output_values run)));
  let expected = Oracle.expected ~correct_prog:correct ~input in
  Printf.printf "correct run prints: %s\n\n"
    (String.concat " " (List.map string_of_int expected));

  (* 3. Dynamic slice of the wrong output: the root cause is missing. *)
  let session =
    Session.create ~prog:faulty ~input ~expected ~profile_inputs:[ [ 1 ]; [ 3 ] ]
      ()
  in
  let ds =
    Slice.compute session.Session.trace
      ~criteria:[ session.Session.wrong_output ]
  in
  let info = session.Session.info in
  Printf.printf "dynamic slice covers source lines: %s\n"
    (String.concat ", "
       (List.map
          (fun sid -> string_of_int (Proginfo.line_of_sid info sid))
          (Slice.sids ds)));
  Printf.printf "  (line 2, the faulty bonus_on, is NOT among them)\n\n";

  (* 4. Demand-driven localization: verified implicit dependences bring
     the root cause into the pruned slice. *)
  let oracle =
    Oracle.create ~faulty_trace:session.Session.trace ~correct_prog:correct
      ~input
  in
  let root_sid = 0 (* the bonus_on initializer *) in
  let report = Demand.locate session ~oracle ~root_sids:[ root_sid ] in
  Printf.printf "locate: found=%b with %d verification(s), %d implicit edge(s)\n"
    report.Demand.found report.Demand.verifications
    report.Demand.expanded_edges;
  Printf.printf "final fault candidate set covers lines: %s\n"
    (String.concat ", "
       (List.map
          (fun sid -> string_of_int (Proginfo.line_of_sid info sid))
          (Slice.sids report.Demand.ips)))
