(* Table 5 of the paper: the two boundary cases of predicate switching.

   (a) Feasibility: forcing P2 true although P1 true implies P2 false in
       the (faulty) program creates an "infeasible" path — and the paper
       argues verifying along it is right, because the predicates
       themselves may be the error.

   (b) Soundness: nested predicates both testing A.  Switching P1 alone
       lets P2 evaluate (to false), so the definition behind both stays
       unexecuted and the implicit dependence is MISSED — the paper's
       acknowledged unsoundness, which it reports never firing in
       practice.

   Run with: dune exec examples/feasibility_soundness.exe *)

module Typecheck = Exom_lang.Typecheck
module Trace = Exom_interp.Trace
module Session = Exom_core.Session
module Verify = Exom_core.Verify
module Verdict = Exom_core.Verdict

let line_sid prog line =
  let found = ref (-1) in
  Exom_lang.Ast.iter_program
    (fun s ->
      if Exom_lang.Loc.line s.Exom_lang.Ast.sloc = line && !found < 0 then
        found := s.Exom_lang.Ast.sid)
    prog;
  !found

let instance trace ~sid =
  match Trace.find_instance trace ~sid ~occ:1 with
  | Some i -> i.Trace.idx
  | None -> failwith "missing instance"

(* Table 5(a): A = 15, so P1 (A > 10) is true and P2 (A > 100) is false;
   on the executed path x at S4 comes from S1. *)
let feasibility =
  {|
int a = 15;
void main() {
  int x = 1;
  if (a > 10) {
    x = 2;
  }
  if (a > 100) {
    x = 3;
  }
  print(x);
}
|}

(* Table 5(b): A = 5, so P1 (A > 10) is false; P2 (A < 5) is nested and
   would also be false for this A. *)
let soundness =
  {|
int a = 5;
void main() {
  int x = 1;
  if (a > 10) {
    if (a < 5) {
      x = 2;
    }
  }
  print(x);
}
|}

let () =
  print_endline "--- Table 5(a): feasibility ---";
  let prog = Typecheck.parse_and_check feasibility in
  (* pretend the expected output is 3: only the infeasible P2-true path
     produces it *)
  let s =
    Session.create ~prog ~input:[] ~expected:[ 3 ] ~profile_inputs:[ [] ] ()
  in
  let p2 = instance s.Session.trace ~sid:(line_sid prog 8) in
  let verdict = Verify.verify s ~p:p2 ~u:s.Session.wrong_output in
  Printf.printf
    "switching P2 (a > 100) although P1 implies it is false: %s\n"
    (Verdict.to_string verdict);
  print_endline
    "  (the implicit dependence is exposed despite the path being \
     infeasible in the faulty program - the predicate itself may be the \
     bug)";
  print_newline ();

  print_endline "--- Table 5(b): soundness gap ---";
  let prog2 = Typecheck.parse_and_check soundness in
  let s2 =
    Session.create ~prog:prog2 ~input:[] ~expected:[ 2 ] ~profile_inputs:[ [] ]
      ()
  in
  let p1 = instance s2.Session.trace ~sid:(line_sid prog2 5) in
  let verdict2 = Verify.verify s2 ~p:p1 ~u:s2.Session.wrong_output in
  Printf.printf "switching P1 (a > 10) with P2 (a < 5) sharing the same a: %s\n"
    (Verdict.to_string verdict2);
  print_endline
    "  (P2 still evaluates false, S3 stays unexecuted: the dependence is \
     missed - the paper's known unsound case; switching one predicate at a \
     time cannot expose it)";
  print_newline ();

  print_endline
    "--- Section 5's remedy: perturb the value of A instead of the branch ---";
  (* feasible correlated predicates: a should have been 12 *)
  let prog3 =
    Typecheck.parse_and_check
      {|
int a = 5;
void main() {
  int x = 1;
  if (a > 10) {
    if (a > 11) {
      x = 2;
    }
  }
  print(x);
}
|}
  in
  let s3 =
    Session.create ~prog:prog3 ~input:[] ~expected:[ 2 ] ~profile_inputs:[ [] ]
      ()
  in
  let p1' = instance s3.Session.trace ~sid:(line_sid prog3 5) in
  Printf.printf "branch switching P1 (correlated nested predicates): %s\n"
    (Verdict.to_string (Verify.verify s3 ~p:p1' ~u:s3.Session.wrong_output));
  let d = instance s3.Session.trace ~sid:(line_sid prog3 2) in
  Printf.printf "perturbing a's value to 12 instead:               %s\n"
    (Verdict.to_string
       (Exom_core.Perturb.verify_value s3 ~d
          ~candidate:(Exom_interp.Value.Vint 12) ~u:s3.Session.wrong_output));
  print_endline
    "  (one integer-domain re-execution exposes what the binary-domain \
     switch cannot - at |range| times the verification cost, as the paper \
     prices it)"
