test/test_align.ml: Alcotest Exom_align Exom_interp Exom_lang List QCheck QCheck_alcotest String
