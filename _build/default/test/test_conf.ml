(* Tests for confidence analysis: re-evaluation, alt sets, the
   confidence formula, pruning and ranking — including the paper's
   Figure 4 example. *)

module Ast = Exom_lang.Ast
module Typecheck = Exom_lang.Typecheck
module Confidence = Exom_conf.Confidence
module Prune = Exom_conf.Prune
module Reval = Exom_conf.Reval
module Interp = Exom_interp.Interp
module Profile = Exom_interp.Profile
module Trace = Exom_interp.Trace
module Value = Exom_interp.Value
module Proginfo = Exom_cfg.Proginfo
module Slice = Exom_ddg.Slice

let compile src = Typecheck.parse_and_check src

let sid_on_line prog line =
  let found = ref None in
  Ast.iter_program
    (fun s ->
      if Exom_lang.Loc.line s.Ast.sloc = line && !found = None then
        found := Some s.Ast.sid)
    prog;
  match !found with
  | Some sid -> sid
  | None -> Alcotest.failf "no statement on line %d" line

let traced prog input =
  let r = Interp.run prog ~input in
  match r.Interp.trace with
  | Some t -> (r, t)
  | None -> Alcotest.fail "no trace"

let instance_of t ~sid =
  match Trace.find_instance t ~sid ~occ:1 with
  | Some i -> i
  | None -> Alcotest.failf "no instance of s%d" sid

(* Re-evaluation *)

let reval_fixture () =
  let src =
    {|
void main() {
  int a = 3;
  int b = a * 2 + 1;
  print(b);
}
|}
  in
  let prog = compile src in
  let info = Proginfo.build prog in
  let _, t = traced prog [] in
  (prog, info, t)

let test_reval_known () =
  let prog, info, t = reval_fixture () in
  let b_sid = sid_on_line prog 4 in
  let inst = instance_of t ~sid:b_sid in
  let stmt = Proginfo.stmt_of_sid info b_sid in
  let a_cell =
    match inst.Trace.uses with (c, _, _) :: _ -> c | [] -> Alcotest.fail "no use"
  in
  (match Reval.run stmt inst ~cell:a_cell ~value:(Value.Vint 10) with
  | Reval.Known (Value.Vint 21) -> ()
  | _ -> Alcotest.fail "expected 10*2+1 = 21");
  match Reval.run stmt inst ~cell:a_cell ~value:(Value.Vint 3) with
  | Reval.Known (Value.Vint 7) -> ()
  | _ -> Alcotest.fail "expected identity replay 7"

let test_reval_rejects_div_by_zero () =
  let src =
    {|
void main() {
  int d = 2;
  int q = 10 / d;
  print(q);
}
|}
  in
  let prog = compile src in
  let info = Proginfo.build prog in
  let _, t = traced prog [] in
  let q_sid = sid_on_line prog 4 in
  let inst = instance_of t ~sid:q_sid in
  let stmt = Proginfo.stmt_of_sid info q_sid in
  let d_cell =
    match inst.Trace.uses with (c, _, _) :: _ -> c | [] -> Alcotest.fail "no use"
  in
  match Reval.run stmt inst ~cell:d_cell ~value:(Value.Vint 0) with
  | Reval.Rejected -> ()
  | _ -> Alcotest.fail "candidate 0 must be rejected"

let test_reval_unknown_on_call_arg () =
  let src =
    {|
int twice(int n) { return n + n; }
void main() {
  int a = 4;
  int b = twice(a);
  print(b);
}
|}
  in
  let prog = compile src in
  let info = Proginfo.build prog in
  let _, t = traced prog [] in
  let b_sid = sid_on_line prog 5 in
  let inst = instance_of t ~sid:b_sid in
  let stmt = Proginfo.stmt_of_sid info b_sid in
  let a_cell =
    match inst.Trace.uses with (c, _, _) :: _ -> c | [] -> Alcotest.fail "no use"
  in
  match Reval.run stmt inst ~cell:a_cell ~value:(Value.Vint 5) with
  | Reval.Unknown -> ()
  | _ -> Alcotest.fail "substituted call argument must be Unknown"

let test_reval_through_ret_cell () =
  (* substituting the return value itself is fine: the call is opaque
     but the ret-cell read is recorded *)
  let src =
    {|
int twice(int n) { return n + n; }
void main() {
  int a = 4;
  int b = twice(a) + 1;
  print(b);
}
|}
  in
  let prog = compile src in
  let info = Proginfo.build prog in
  let _, t = traced prog [] in
  let b_sid = sid_on_line prog 5 in
  let inst = instance_of t ~sid:b_sid in
  let stmt = Proginfo.stmt_of_sid info b_sid in
  let ret_cell =
    List.find_map
      (fun (c, _, _) ->
        match c with Exom_interp.Cell.Ret _ -> Some c | _ -> None)
      inst.Trace.uses
    |> Option.get
  in
  match Reval.run stmt inst ~cell:ret_cell ~value:(Value.Vint 100) with
  | Reval.Known (Value.Vint 101) -> ()
  | _ -> Alcotest.fail "expected 100 + 1"

let test_reval_store_index_moved () =
  let src =
    {|
void main() {
  int i = 1;
  int[] a = new_array(4);
  a[i] = 9;
  print(a[1]);
}
|}
  in
  let prog = compile src in
  let info = Proginfo.build prog in
  let _, t = traced prog [] in
  let st_sid = sid_on_line prog 5 in
  let inst = instance_of t ~sid:st_sid in
  let stmt = Proginfo.stmt_of_sid info st_sid in
  let i_cell =
    List.find_map
      (fun (c, _, _) ->
        match Exom_interp.Cell.static_var c with
        | Some "i" -> Some c
        | _ -> None)
      inst.Trace.uses
    |> Option.get
  in
  match Reval.run stmt inst ~cell:i_cell ~value:(Value.Vint 2) with
  | Reval.Rejected -> ()
  | _ -> Alcotest.fail "moving the store index must reject"

(* Figure 4: a=..., b=a%2, c=a+2, print(b) correct, print(c) wrong.
   b's producer gets confidence 1 (its value is pinned by the correct
   output); b = a%2 is many-to-one, so a's confidence is strictly
   between 0 and 1; c gets 0 (it only reaches the wrong output). *)

let fig4_src =
  {|
void main() {
  int a = input();
  int b = a % 2;
  int c = a + 2;
  print(b);
  print(c);
}
|}

let fig4 () =
  let prog = compile fig4_src in
  let info = Proginfo.build prog in
  let r, t = traced prog [ 5 ] in
  (* profile over several odd/even inputs: range(a) = {1..6} *)
  let profile = Profile.collect prog [ [ 1 ]; [ 2 ]; [ 3 ]; [ 4 ]; [ 6 ] ] in
  let correct = [ fst (List.nth r.Interp.outputs 0) ] in
  let conf =
    Confidence.compute info profile t ~correct ~benign:[] ~implicit:[]
  in
  (prog, t, conf)

let test_fig4_confidences () =
  let prog, t, conf = fig4 () in
  let c_of line =
    Confidence.confidence conf
      (instance_of t ~sid:(sid_on_line prog line)).Trace.idx
  in
  Alcotest.(check bool) "C(b) = 1" true (c_of 4 >= 0.999);
  Alcotest.(check bool) "C(c) = 0" true (c_of 5 <= 0.001);
  let ca = c_of 3 in
  Alcotest.(check bool) "0 < C(a)" true (ca > 0.001);
  Alcotest.(check bool) "C(a) < 1" true (ca < 0.999)

let test_invertible_chain_full_confidence () =
  (* x -> y = x + 1 -> print(y) correct: addition by a constant is
     one-to-one, so x's alt is a singleton and C(x) = 1. *)
  let src =
    {|
void main() {
  int x = input();
  int y = x + 1;
  print(y);
  print(0 - 1);
}
|}
  in
  let prog = compile src in
  let info = Proginfo.build prog in
  let r, t = traced prog [ 7 ] in
  let profile = Profile.collect prog [ [ 1 ]; [ 2 ]; [ 9 ] ] in
  let correct = [ fst (List.nth r.Interp.outputs 0) ] in
  let conf =
    Confidence.compute info profile t ~correct ~benign:[] ~implicit:[]
  in
  let x_idx = (instance_of t ~sid:(sid_on_line prog 3)).Trace.idx in
  Alcotest.(check bool) "C(x) = 1" true
    (Confidence.confidence conf x_idx >= 0.999)

let test_unreached_instances_zero () =
  let prog, t, conf = fig4 () in
  ignore prog;
  (* the wrong output itself is unconstrained *)
  let wrong = Trace.length t - 1 in
  Alcotest.(check bool) "wrong output C=0" true
    (Confidence.confidence conf wrong <= 0.001)

let test_control_parent_pinned () =
  (* A correct output inside a branch pins the branch predicate. *)
  let src =
    {|
void main() {
  int k = input();
  if (k > 0) {
    print(k);
  }
  print(k + 1);
}
|}
  in
  let prog = compile src in
  let info = Proginfo.build prog in
  let r, t = traced prog [ 5 ] in
  let profile = Profile.collect prog [ [ 1 ]; [ 2 ]; [ 3 ] ] in
  let correct = [ fst (List.nth r.Interp.outputs 0) ] in
  let conf =
    Confidence.compute info profile t ~correct ~benign:[] ~implicit:[]
  in
  let if_idx = (instance_of t ~sid:(sid_on_line prog 4)).Trace.idx in
  Alcotest.(check bool) "predicate pinned to C=1" true
    (Confidence.confidence conf if_idx >= 0.999)

let test_implicit_edge_pins_predicate () =
  (* Figure 5's mechanism: adding a verified implicit edge p -> t with a
     constrained t pins p (propagation only along *verified* edges). *)
  let src =
    {|
int g = 0;
void main() {
  int k = 5;
  if (g == 1) {
    k = 9;
  }
  print(k);
  print(k - 5);
}
|}
  in
  let prog = compile src in
  let info = Proginfo.build prog in
  let r, t = traced prog [] in
  let profile = Profile.collect prog [ [] ] in
  let correct = [ fst (List.nth r.Interp.outputs 0) ] in
  let if_idx = (instance_of t ~sid:(sid_on_line prog 5)).Trace.idx in
  let print_idx = fst (List.nth r.Interp.outputs 0) in
  let without =
    Confidence.compute info profile t ~correct ~benign:[] ~implicit:[]
  in
  let with_edge =
    Confidence.compute info profile t ~correct ~benign:[]
      ~implicit:[ (if_idx, print_idx) ]
  in
  Alcotest.(check bool) "unpinned without edge" true
    (Confidence.confidence without if_idx <= 0.001);
  Alcotest.(check bool) "pinned with edge" true
    (Confidence.confidence with_edge if_idx >= 0.999)

(* Pruning and ranking *)

let test_prune_removes_confident () =
  (* a feeds both outputs; the invertible chain a -> b -> correct output
     pins a to confidence 1, so pruning shrinks the wrong output's
     slice even though a is in it. *)
  let src =
    {|
void main() {
  int a = input();
  int b = a + 1;
  int c = a * 0;
  print(b);
  print(c);
}
|}
  in
  let prog = compile src in
  let info = Proginfo.build prog in
  let r, t = traced prog [ 5 ] in
  let profile = Profile.collect prog [ [ 1 ]; [ 2 ]; [ 7 ] ] in
  let correct = [ fst (List.nth r.Interp.outputs 0) ] in
  let conf =
    Confidence.compute info profile t ~correct ~benign:[] ~implicit:[]
  in
  let wrong = fst (List.nth r.Interp.outputs 1) in
  let slice = Slice.compute t ~criteria:[ wrong ] in
  let ps = Prune.compute t ~slice ~conf ~criterion:wrong in
  Alcotest.(check bool) "a in the slice" true
    (Slice.mem_sid slice (sid_on_line prog 3));
  Alcotest.(check bool) "smaller than slice" true
    (Prune.size ps < Slice.dynamic_size slice);
  List.iter
    (fun e ->
      Alcotest.(check bool) "no confident entries" true
        (e.Prune.confidence < 0.999))
    (Prune.entries ps)

let test_ranking_order () =
  let prog, t, conf = fig4 () in
  ignore prog;
  let wrong = Trace.length t - 1 in
  let slice = Slice.compute t ~criteria:[ wrong ] in
  let ps = Prune.compute t ~slice ~conf ~criterion:wrong in
  let rec sorted = function
    | a :: (b :: _ as rest) ->
      (a.Prune.confidence < b.Prune.confidence
      || (a.Prune.confidence = b.Prune.confidence
         && a.Prune.distance <= b.Prune.distance))
      && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "ranked by confidence then distance" true
    (sorted (Prune.entries ps))

let test_distances () =
  let src =
    {|
void main() {
  int a = 1;
  int b = a + 1;
  print(b);
}
|}
  in
  let _, t = traced (compile src) [] in
  let d = Prune.distances t ~criterion:2 in
  Alcotest.(check int) "criterion at 0" 0 d.(2);
  Alcotest.(check int) "b at 1" 1 d.(1);
  Alcotest.(check int) "a at 2" 2 d.(0)

(* Property: confidence is always within [0, 1]. *)
let prop_confidence_bounded =
  QCheck.Test.make ~name:"confidence within [0,1]" ~count:25
    QCheck.(int_range 0 20)
    (fun n ->
      let src =
        {|
void main() {
  int n = input();
  int a = n * 3 % 7;
  int b = a + n;
  if (b > 10) {
    b = b - 10;
  }
  print(a);
  print(b);
}
|}
      in
      let prog = compile src in
      let info = Proginfo.build prog in
      let _, t = traced prog [ n ] in
      let profile = Profile.collect prog [ [ 0 ]; [ 3 ]; [ 11 ]; [ 17 ] ] in
      let r = Interp.run prog ~input:[ n ] in
      let correct = [ fst (List.nth r.Interp.outputs 0) ] in
      let conf =
        Confidence.compute info profile t ~correct ~benign:[] ~implicit:[]
      in
      let ok = ref true in
      for i = 0 to Trace.length t - 1 do
        let c = Confidence.confidence conf i in
        if c < 0.0 || c > 1.0 then ok := false
      done;
      !ok)

(* Property: marking an instance benign never lowers anyone's
   confidence (constraints only shrink alt sets). *)
let prop_benign_monotone =
  QCheck.Test.make ~name:"benign marking is monotone" ~count:15
    QCheck.(int_range 1 15)
    (fun n ->
      let src =
        {|
void main() {
  int n = input();
  int a = n + 1;
  int b = a * 2;
  print(b);
  print(b + n);
}
|}
      in
      let prog = compile src in
      let info = Proginfo.build prog in
      let r, t = traced prog [ n ] in
      let profile = Profile.collect prog [ [ 1 ]; [ 2 ]; [ 5 ]; [ 8 ] ] in
      let correct = [ fst (List.nth r.Interp.outputs 0) ] in
      let base =
        Confidence.compute info profile t ~correct ~benign:[] ~implicit:[]
      in
      let marked =
        Confidence.compute info profile t ~correct ~benign:[ 1 ] ~implicit:[]
      in
      let ok = ref true in
      for i = 0 to Trace.length t - 1 do
        if
          Confidence.confidence marked i
          < Confidence.confidence base i -. 1e-9
        then ok := false
      done;
      !ok)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "conf"
    [ ( "reval",
        [ tc "known result" test_reval_known;
          tc "rejects div by zero" test_reval_rejects_div_by_zero;
          tc "unknown on call argument" test_reval_unknown_on_call_arg;
          tc "through ret cell" test_reval_through_ret_cell;
          tc "store index moved" test_reval_store_index_moved ] );
      ( "confidence",
        [ tc "figure 4" test_fig4_confidences;
          tc "invertible chain" test_invertible_chain_full_confidence;
          tc "unreached instances" test_unreached_instances_zero;
          tc "control parent pinned" test_control_parent_pinned;
          tc "implicit edge pins predicate" test_implicit_edge_pins_predicate
        ] );
      ( "pruning",
        [ tc "removes confident instances" test_prune_removes_confident;
          tc "ranking order" test_ranking_order;
          tc "distances" test_distances ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_confidence_bounded; prop_benign_monotone ] ) ]
