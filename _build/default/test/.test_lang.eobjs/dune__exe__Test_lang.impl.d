test/test_lang.ml: Alcotest Exom_lang List Printf QCheck QCheck_alcotest
