test/test_ddg.ml: Alcotest Exom_cfg Exom_ddg Exom_interp Exom_lang List Printf QCheck QCheck_alcotest String
