test/test_core.ml: Alcotest Buffer Exom_core Exom_ddg Exom_interp Exom_lang List Printf QCheck QCheck_alcotest
