(* Tests for region trees and the execution alignment algorithm
   (Algorithm 1), including the paper's Figure 2 (loop + recursion
   alignment) and Figure 3 (single-entry-multiple-exit) scenarios. *)

module Ast = Exom_lang.Ast
module Typecheck = Exom_lang.Typecheck
module Align = Exom_align.Align
module Region = Exom_align.Region
module Interp = Exom_interp.Interp
module Trace = Exom_interp.Trace
module Value = Exom_interp.Value

let compile src = Typecheck.parse_and_check src

let sid_on_line prog line =
  let found = ref None in
  Ast.iter_program
    (fun s ->
      if Exom_lang.Loc.line s.Ast.sloc = line && !found = None then
        found := Some s.Ast.sid)
    prog;
  match !found with
  | Some sid -> sid
  | None -> Alcotest.failf "no statement on line %d" line

let traced ?switch prog input =
  let r = Interp.run ?switch prog ~input in
  match r.Interp.trace with
  | Some t -> (r, t)
  | None -> Alcotest.fail "no trace"

let instance t ~sid ~occ =
  match Trace.find_instance t ~sid ~occ with
  | Some i -> i.Trace.idx
  | None -> Alcotest.failf "no instance of s%d occ %d" sid occ

(* Region trees *)

let region_src =
  {|
void main() {
  int i = 0;
  while (i < 2) {
    if (i == 0) {
      print(100);
    }
    i = i + 1;
  }
  print(i);
}
|}

let test_region_tree_shape () =
  let prog = compile region_src in
  let _, t = traced prog [] in
  let reg = Region.build t in
  let w = sid_on_line prog 4 in
  let w1 = instance t ~sid:w ~occ:1 in
  let w2 = instance t ~sid:w ~occ:2 in
  let w3 = instance t ~sid:w ~occ:3 in
  (* loop entry forms one region: w2 nests under w1, w3 under w2 *)
  Alcotest.(check int) "w2 child of w1" w1 (Region.parent reg w2);
  Alcotest.(check int) "w3 child of w2" w2 (Region.parent reg w3);
  Alcotest.(check bool) "w3 inside w1's region" true
    (Region.in_region reg ~u:w3 ~r:w1);
  (* print(i) after the loop is outside the loop region *)
  let out = instance t ~sid:(sid_on_line prog 10) ~occ:1 in
  Alcotest.(check bool) "print(i) outside loop" false
    (Region.in_region reg ~u:out ~r:w1);
  Alcotest.(check bool) "everything in root" true
    (Region.in_region reg ~u:out ~r:Region.root)

let test_region_siblings () =
  let prog = compile region_src in
  let _, t = traced prog [] in
  let reg = Region.build t in
  let if_sid = sid_on_line prog 5 in
  let inc_sid = sid_on_line prog 8 in
  let if1 = instance t ~sid:if_sid ~occ:1 in
  let inc1 = instance t ~sid:inc_sid ~occ:1 in
  Alcotest.(check (option int)) "if's sibling is inc" (Some inc1)
    (Region.sibling reg if1);
  (* first subregion of the if's region is the print *)
  let pr = instance t ~sid:(sid_on_line prog 6) ~occ:1 in
  Alcotest.(check (option int)) "if's first subregion" (Some pr)
    (Region.first_subregion reg if1)

let test_region_rendering () =
  let prog = compile region_src in
  let _, t = traced prog [] in
  let reg = Region.build t in
  let rendered = Region.render_forest reg in
  (* shape: decl, then one loop region nesting its iterations, then the
     final print -- exactly the paper's bracket notation *)
  Alcotest.(check bool) "brackets present" true
    (String.contains rendered '[' && String.contains rendered ']');
  let commas = String.split_on_char ',' rendered in
  Alcotest.(check int) "three top-level regions" 3 (List.length commas);
  (* every instance's sid appears; spot-check the loop head *)
  let w = string_of_int (sid_on_line prog 4) in
  let contains needle hay =
    let n = String.length needle and h = String.length hay in
    let rec scan i = i + n <= h && (String.sub hay i n = needle || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "loop head rendered" true (contains ("[" ^ w) rendered)

(* Alignment fast path and simple region matching *)

let simple_switch_src =
  {|
void main() {
  int flag = 0;
  int x = 1;
  if (flag == 1) {
    x = 2;
  }
  print(x);
  print(7);
}
|}

let test_match_simple () =
  let prog = compile simple_switch_src in
  let if_sid = sid_on_line prog 5 in
  let r1, t1 = traced prog [] in
  let r2, t2 =
    traced ~switch:{ Interp.switch_sid = if_sid; switch_occ = 1 } prog []
  in
  ignore r1;
  ignore r2;
  let reg1 = Region.build t1 and reg2 = Region.build t2 in
  let p = instance t1 ~sid:if_sid ~occ:1 in
  (* the decl of x, before the switch: matches itself *)
  let xdecl = instance t1 ~sid:(sid_on_line prog 4) ~occ:1 in
  Alcotest.(check (option int)) "prefix self-match" (Some xdecl)
    (Align.to_option (Align.match_from reg1 reg2 ~p ~u:xdecl));
  (* print(x), after the if: siblings shift by one (x=2 now runs) *)
  let px = instance t1 ~sid:(sid_on_line prog 8) ~occ:1 in
  let px' = instance t2 ~sid:(sid_on_line prog 8) ~occ:1 in
  Alcotest.(check (option int)) "print(x) found across switch" (Some px')
    (Align.to_option (Align.match_from reg1 reg2 ~p ~u:px));
  Alcotest.(check bool) "indices differ" true (px <> px');
  (* the matched instance carries the changed value *)
  Alcotest.(check bool) "value changed by switch" true
    (Value.equal (Trace.get t2 px').Trace.value (Value.Vint 2))

(* Figure 2 of the paper, transliterated to MCL.  Globals play the
   role of the initialized variables; the while loop executes only when
   P is switched; statement 15 (print of x) sits under two nested ifs. *)

let fig2_src =
  {|
int i = 0;
int t = 0;
int x = 0;
int p = 0;
int c1 = 0;
int c2 = 0;
void main() {
  if (p == 1) {
    t = 1;
    x = 5;
  }
  while (i < t) {
    if (c1 == 1) {
      x = 9;
    }
    i = i + 1;
  }
  if (t < 9) {
    if (c2 == 0) {
      print(x);
    }
    print(77);
  }
}
|}

let fig2 () =
  let prog = compile fig2_src in
  let if_p = sid_on_line prog 9 in
  let use = sid_on_line prog 21 in
  (prog, if_p, use)

let test_fig2_match_exists () =
  let prog, if_p, use = fig2 () in
  let _, t1 = traced prog [] in
  let _, t2 =
    traced ~switch:{ Interp.switch_sid = if_p; switch_occ = 1 } prog []
  in
  let reg1 = Region.build t1 and reg2 = Region.build t2 in
  let p = instance t1 ~sid:if_p ~occ:1 in
  let u = instance t1 ~sid:use ~occ:1 in
  (* In the switched run the loop executes an extra iteration, so the
     use's index shifts, but the region walk finds it. *)
  let u' = instance t2 ~sid:use ~occ:1 in
  Alcotest.(check (option int)) "15 found in switched run" (Some u')
    (Align.to_option (Align.match_from reg1 reg2 ~p ~u));
  (* and the value at the matched point reflects the switch: x = 5 *)
  Alcotest.(check bool) "switched value" true
    (Value.equal (Trace.get t2 u').Trace.value (Value.Vint 5))

(* Execution (3) of Figure 2: the then-branch also sets c2, so after
   switching, the inner if takes the other branch and print(x) does NOT
   execute — alignment must report Not_found, not mis-match another
   print. *)
let fig2_c2_src =
  {|
int i = 0;
int t = 0;
int x = 0;
int p = 0;
int c1 = 0;
int c2 = 0;
void main() {
  if (p == 1) {
    t = 1;
    x = 5;
    c2 = 1;
  }
  while (i < t) {
    if (c1 == 1) {
      x = 9;
    }
    i = i + 1;
  }
  if (t < 9) {
    if (c2 == 0) {
      print(x);
    }
    print(77);
  }
}
|}

let test_fig2_no_match () =
  let prog = compile fig2_c2_src in
  let if_p = sid_on_line prog 9 in
  let use = sid_on_line prog 22 in
  let _, t1 = traced prog [] in
  let _, t2 =
    traced ~switch:{ Interp.switch_sid = if_p; switch_occ = 1 } prog []
  in
  let reg1 = Region.build t1 and reg2 = Region.build t2 in
  let p = instance t1 ~sid:if_p ~occ:1 in
  let u = instance t1 ~sid:use ~occ:1 in
  Alcotest.(check (option int)) "print(x) has no counterpart" None
    (Align.to_option (Align.match_from reg1 reg2 ~p ~u));
  (* but its sibling print(77) still matches *)
  let p77 = sid_on_line prog 24 in
  let u77 = instance t1 ~sid:p77 ~occ:1 in
  let u77' = instance t2 ~sid:p77 ~occ:1 in
  Alcotest.(check (option int)) "print(77) still matches" (Some u77')
    (Align.to_option (Align.match_from reg1 reg2 ~p ~u:u77))

(* Figure 3: single-entry-multiple-exit.  Switching the guard that sets
   c0 makes the loop break in its first iteration; the use inside the
   second if must be reported unmatched via sibling exhaustion. *)

let fig3_src =
  {|
int c0 = 0;
int c1 = 1;
int x = 3;
int q = 0;
void main() {
  if (q == 1) {
    c0 = 1;
  }
  int i = 0;
  while (i < 2) {
    if (c0 == 1) {
      break;
    }
    if (c1 == 1) {
      print(x);
    }
    i = i + 1;
  }
  print(50);
}
|}

let test_fig3_break_exhaustion () =
  let prog = compile fig3_src in
  let if_q = sid_on_line prog 7 in
  let use = sid_on_line prog 16 in
  let after = sid_on_line prog 20 in
  let _, t1 = traced prog [] in
  let _, t2 =
    traced ~switch:{ Interp.switch_sid = if_q; switch_occ = 1 } prog []
  in
  let reg1 = Region.build t1 and reg2 = Region.build t2 in
  let p = instance t1 ~sid:if_q ~occ:1 in
  (* print(x) executed twice originally; neither instance exists after
     the switch (the loop breaks immediately) *)
  let u1 = instance t1 ~sid:use ~occ:1 in
  Alcotest.(check (option int)) "print(x)#1 unmatched" None
    (Align.to_option (Align.match_from reg1 reg2 ~p ~u:u1));
  let u2 = instance t1 ~sid:use ~occ:2 in
  Alcotest.(check (option int)) "print(x)#2 unmatched" None
    (Align.to_option (Align.match_from reg1 reg2 ~p ~u:u2));
  (* code after the loop still aligns *)
  let a = instance t1 ~sid:after ~occ:1 in
  let a' = instance t2 ~sid:after ~occ:1 in
  Alcotest.(check (option int)) "print(50) matches" (Some a')
    (Align.to_option (Align.match_from reg1 reg2 ~p ~u:a))

(* Recursion: switching a predicate that triggers a recursive call must
   not confuse the matcher into pairing instances from different call
   depths (the paper's "statement 7 makes a recursive self call"). *)

let recursion_src =
  {|
int depth = 0;
int x = 1;
int go = 0;
void walk(int d) {
  if (go == 1) {
    if (d < 2) {
      walk(d + 1);
    }
  }
  depth = depth + 1;
}
void main() {
  walk(0);
  print(x);
}
|}

let test_recursion_alignment () =
  let prog = compile recursion_src in
  let if_go = sid_on_line prog 6 in
  let use = sid_on_line prog 15 in
  let _, t1 = traced prog [] in
  let _, t2 =
    traced ~switch:{ Interp.switch_sid = if_go; switch_occ = 1 } prog []
  in
  let reg1 = Region.build t1 and reg2 = Region.build t2 in
  let p = instance t1 ~sid:if_go ~occ:1 in
  (* the final print matches despite the recursive calls in between *)
  let u = instance t1 ~sid:use ~occ:1 in
  let u' = instance t2 ~sid:use ~occ:1 in
  Alcotest.(check bool) "switched run longer" true
    (Trace.length t2 > Trace.length t1);
  Alcotest.(check (option int)) "print matches across recursion" (Some u')
    (Align.to_option (Align.match_from reg1 reg2 ~p ~u));
  (* depth's increment in the OUTER frame must match the outer one, not
     the recursive callee's instance: in the switched run the callee's
     increment executes first, so the outer one is occurrence 2 *)
  let inc = sid_on_line prog 11 in
  let d1 = instance t1 ~sid:inc ~occ:1 in
  (match Align.to_option (Align.match_from reg1 reg2 ~p ~u:d1) with
  | Some d1' ->
    let got = Trace.get t2 d1' in
    Alcotest.(check int) "same statement" inc got.Trace.sid;
    Alcotest.(check int) "outer frame pairs with outer occurrence" 2
      got.Trace.occ
  | None -> Alcotest.fail "outer increment should match")

(* Root alignment across program variants (the oracle's use case). *)
let test_root_alignment_variants () =
  let faulty =
    compile
      "void main() { int k = 0; int y = 2; if (k == 1) { y = 5; } print(y); }"
  in
  let correct =
    compile
      "void main() { int k = 1; int y = 2; if (k == 1) { y = 5; } print(y); }"
  in
  let _, t1 = traced faulty [] in
  let _, t2 = traced correct [] in
  let reg1 = Region.build t1 and reg2 = Region.build t2 in
  (* y decl matches and has equal value: benign *)
  Alcotest.(check (option int)) "y decl matches" (Some 1)
    (Align.to_option (Align.match_root reg1 reg2 ~u:1));
  (* print(y) matches but carries different values *)
  let pr = instance t1 ~sid:4 ~occ:1 in
  (match Align.to_option (Align.match_root reg1 reg2 ~u:pr) with
  | Some pr' ->
    Alcotest.(check bool) "values differ" false
      (Value.equal (Trace.get t1 pr).Trace.value (Trace.get t2 pr').Trace.value)
  | None -> Alcotest.fail "print should match")

(* Property: aligning an execution with itself is the identity. *)
let prop_self_alignment_identity =
  QCheck.Test.make ~name:"self-alignment is the identity" ~count:20
    QCheck.(int_range 0 8)
    (fun n ->
      let src =
        {|
int acc = 0;
void bump(int k) {
  if (k % 2 == 0) {
    acc = acc + k;
  }
}
void main() {
  int n = input();
  int i = 0;
  while (i < n) {
    bump(i);
    i = i + 1;
  }
  print(acc);
}
|}
      in
      let prog = compile src in
      let r1 = Interp.run prog ~input:[ n ] in
      let r2 = Interp.run prog ~input:[ n ] in
      match (r1.Interp.trace, r2.Interp.trace) with
      | Some t1, Some t2 ->
        let reg1 = Region.build t1 and reg2 = Region.build t2 in
        let ok = ref true in
        for u = 0 to Trace.length t1 - 1 do
          if Align.to_option (Align.match_root reg1 reg2 ~u) <> Some u then
            ok := false
        done;
        !ok
      | _ -> false)

(* Property: region trees are consistent — every instance is inside the
   region of each of its ancestors, siblings are ordered, and the
   rendered forest mentions every instance exactly once. *)
let prop_region_tree_consistent =
  QCheck.Test.make ~name:"region trees are consistent" ~count:20
    QCheck.(int_range 0 10)
    (fun n ->
      let src =
        {|
void main() {
  int n = input();
  int i = 0;
  while (i < n) {
    if (i % 2 == 0) {
      print(i);
    }
    i = i + 1;
  }
}
|}
      in
      let prog = compile src in
      match (Interp.run prog ~input:[ n ]).Interp.trace with
      | None -> false
      | Some t ->
        let reg = Region.build t in
        let ok = ref true in
        for u = 0 to Trace.length t - 1 do
          (* in_region along the whole ancestor chain *)
          let rec walk a =
            if a >= 0 then begin
              if not (Region.in_region reg ~u ~r:a) then ok := false;
              walk (Region.parent reg a)
            end
          in
          walk u;
          (* children round-trip: u appears in its parent's child list *)
          let p = Region.parent reg u in
          if not (List.mem u (Region.children reg p)) then ok := false
        done;
        !ok)

(* Property: matching is injective on a prefix-preserving switch — the
   matched counterpart always has the same sid. *)
let prop_match_same_sid =
  QCheck.Test.make ~name:"matched instances share their statement" ~count:25
    QCheck.(pair (int_range 1 4) (int_range 0 20))
    (fun (occ, seed) ->
      let src =
        {|
void main() {
  int n = input();
  int acc = 0;
  int i = 0;
  while (i < 6) {
    if ((i + n) % 3 == 0) {
      acc = acc + i;
    }
    i = i + 1;
  }
  print(acc);
}
|}
      in
      let prog = compile src in
      let if_sid = sid_on_line prog 7 in
      let r1 = Interp.run prog ~input:[ seed ] in
      let r2 =
        Interp.run prog
          ~switch:{ Interp.switch_sid = if_sid; switch_occ = occ }
          ~input:[ seed ]
      in
      match (r1.Interp.trace, r2.Interp.trace) with
      | Some t1, Some t2 ->
        let reg1 = Region.build t1 and reg2 = Region.build t2 in
        let p =
          match Trace.find_instance t1 ~sid:if_sid ~occ with
          | Some i -> i.Trace.idx
          | None -> -1
        in
        p >= 0
        &&
        let ok = ref true in
        for u = 0 to Trace.length t1 - 1 do
          match Align.to_option (Align.match_from reg1 reg2 ~p ~u) with
          | Some u' ->
            if (Trace.get t1 u).Trace.sid <> (Trace.get t2 u').Trace.sid then
              ok := false
          | None -> ()
        done;
        !ok
      | _ -> false)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "align"
    [ ( "regions",
        [ tc "tree shape" test_region_tree_shape;
          tc "siblings" test_region_siblings;
          tc "paper-style rendering" test_region_rendering ] );
      ( "matching",
        [ tc "simple switch" test_match_simple;
          tc "figure 2: match exists" test_fig2_match_exists;
          tc "figure 2(3): no match" test_fig2_no_match;
          tc "figure 3: break exhaustion" test_fig3_break_exhaustion;
          tc "recursion" test_recursion_alignment;
          tc "root alignment" test_root_alignment_variants ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_match_same_sid; prop_self_alignment_identity;
            prop_region_tree_consistent ] ) ]
