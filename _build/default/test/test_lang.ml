(* Tests for the MCL front end: lexer, parser, typechecker, printer. *)

module Ast = Exom_lang.Ast
module Lexer = Exom_lang.Lexer
module Loc = Exom_lang.Loc
module Parser = Exom_lang.Parser
module Pretty = Exom_lang.Pretty
module Token = Exom_lang.Token
module Typecheck = Exom_lang.Typecheck

let parse = Parser.parse_program
let check src = ignore (Typecheck.parse_and_check src)

let rejects src =
  match check src with
  | () -> Alcotest.failf "expected a front-end error for:@.%s" src
  | exception (Loc.Error _ | Failure _) -> ()

let sample =
  {|
int g = 3;
void main() {
  int x = input();
  int s = 0;
  int i = 0;
  while (i < x) {
    if (i % 2 == 0) {
      s = s + i;
    } else {
      s = s - 1;
    }
    i = i + 1;
  }
  print(s + g);
}
|}

(* Lexer *)

let test_tokens () =
  let toks = List.map fst (Lexer.tokenize "if (x <= 10) { y = -x % 2; } // c") in
  Alcotest.(check (list string))
    "token stream"
    [ "if"; "("; "x"; "<="; "10"; ")"; "{"; "y"; "="; "-"; "x"; "%"; "2"; ";";
      "}"; "<eof>" ]
    (List.map Token.to_string toks)

let test_token_locations () =
  let toks = Lexer.tokenize "x\n  yy" in
  match toks with
  | [ (Token.IDENT "x", l1); (Token.IDENT "yy", l2); (Token.EOF, _) ] ->
    Alcotest.(check int) "line of x" 1 (Loc.line l1);
    Alcotest.(check int) "col of x" 1 (Loc.col l1);
    Alcotest.(check int) "line of yy" 2 (Loc.line l2);
    Alcotest.(check int) "col of yy" 3 (Loc.col l2)
  | _ -> Alcotest.fail "unexpected token stream"

let test_two_char_operators () =
  let ops = [ "<="; ">="; "=="; "!="; "&&"; "||" ] in
  List.iter
    (fun op ->
      match Lexer.tokenize op with
      | [ (tok, _); (Token.EOF, _) ] ->
        Alcotest.(check string) op op (Token.to_string tok)
      | _ -> Alcotest.failf "bad lexing of %s" op)
    ops

let test_comment_skipping () =
  let toks = Lexer.tokenize "// only a comment\n// another\n42" in
  match toks with
  | [ (Token.INT 42, l); (Token.EOF, _) ] ->
    Alcotest.(check int) "line" 3 (Loc.line l)
  | _ -> Alcotest.fail "comments not skipped"

let test_lexer_rejects_stray_amp () =
  match Lexer.tokenize "x & y" with
  | _ -> Alcotest.fail "expected lexer error"
  | exception Loc.Error _ -> ()

(* Parser *)

let test_parse_sample () =
  let prog = parse sample in
  Alcotest.(check int) "one function" 1 (List.length prog.Ast.funcs);
  Alcotest.(check int) "one global" 1 (List.length prog.Ast.globals);
  Alcotest.(check int) "statement count" 10 (Ast.stmt_count prog)

let test_sid_dense_and_unique () =
  let prog = parse sample in
  let sids = ref [] in
  Ast.iter_program (fun s -> sids := s.Ast.sid :: !sids) prog;
  let sorted = List.sort_uniq compare !sids in
  Alcotest.(check int) "unique sids" (List.length !sids) (List.length sorted);
  Alcotest.(check int) "dense from 0"
    (List.length sorted - 1)
    (List.fold_left max 0 sorted)

let test_precedence () =
  let prog = parse "void main() { int x = 1 + 2 * 3; bool b = 1 < 2 && true; }" in
  match (List.hd prog.Ast.funcs).Ast.fbody with
  | [ { Ast.skind = Ast.Sdecl (_, _, Some e1); _ };
      { Ast.skind = Ast.Sdecl (_, _, Some e2); _ } ] ->
    Alcotest.(check string) "mul binds tighter" "1 + (2 * 3)"
      (Pretty.expr_to_string e1);
    Alcotest.(check string) "cmp binds tighter than &&" "(1 < 2) && true"
      (Pretty.expr_to_string e2)
  | _ -> Alcotest.fail "unexpected ast"

let test_left_associativity () =
  let prog = parse "void main() { int x = 10 - 3 - 2; }" in
  match (List.hd prog.Ast.funcs).Ast.fbody with
  | [ { Ast.skind = Ast.Sdecl (_, _, Some e); _ } ] ->
    Alcotest.(check string) "left assoc" "(10 - 3) - 2" (Pretty.expr_to_string e)
  | _ -> Alcotest.fail "unexpected ast"

let test_else_if_chain () =
  let prog =
    parse
      "void main() { int x = 0; if (x == 0) { x = 1; } else if (x == 1) { x = \
       2; } else { x = 3; } }"
  in
  match (List.hd prog.Ast.funcs).Ast.fbody with
  | [ _; { Ast.skind = Ast.Sif (_, _, [ { Ast.skind = Ast.Sif (_, _, [ _ ]); _ } ]); _ } ]
    -> ()
  | _ -> Alcotest.fail "else-if not nested as expected"

let test_parse_errors () =
  let bad = [ "void main() { x = ; }"; "void main() { if x { } }"; "int f(" ] in
  List.iter
    (fun src ->
      match parse src with
      | _ -> Alcotest.failf "expected parse error: %s" src
      | exception Loc.Error _ -> ())
    bad

let test_roundtrip () =
  let prog = parse sample in
  let printed = Pretty.program_to_string prog in
  let reparsed = parse printed in
  Alcotest.(check string) "pretty is a fixpoint"
    printed
    (Pretty.program_to_string reparsed);
  Alcotest.(check int) "same statement count" (Ast.stmt_count prog)
    (Ast.stmt_count reparsed)

(* Typechecker *)

let test_accepts_sample () = check sample

let test_rejects () =
  rejects "void main() { x = 1; }" (* unbound *);
  rejects "void main() { int x = true; }" (* type clash *);
  rejects "void main() { int x = 0; int x = 1; }" (* redecl *);
  rejects "void main() { int x = 0; if (x) { } }" (* int as cond *);
  rejects "void main() { break; }" (* break outside loop *);
  rejects "int f() { return true; }  void main() { }" (* wrong return type *);
  rejects "void main() { print(true); }" (* builtin arg type *);
  rejects "void main() { print(1, 2); }" (* builtin arity *);
  rejects "void f() { } void f() { } void main() { }" (* duplicate function *);
  rejects "int len(int x) { return x; } void main() { }" (* builtin redef *);
  rejects "void main() { int a = 0; int y = a[0]; }" (* indexing non-array *);
  rejects "int g = 0; void main() { int g = 1; }" (* shadowing a global *)

let test_rejects_no_main () =
  match check "void f() { }" with
  | () -> Alcotest.fail "expected failure"
  | exception Failure _ -> ()

let test_array_ops_typecheck () =
  check
    {|
void main() {
  int[] a = new_array(10);
  a[0] = 5;
  int n = len(a);
  int v = a[n - 1];
  print(v);
}
|}

let test_recursion_typechecks () =
  check
    {|
int fib(int n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
void main() { print(fib(10)); }
|}

(* Property tests. *)

let gen_expr =
  let open QCheck.Gen in
  sized
  @@ fix (fun self n ->
         if n <= 0 then
           oneof
             [ map (fun i -> Ast.Eint i) (int_range 0 1000);
               return (Ast.Evar "x") ]
           |> map (fun edesc -> { Ast.edesc; eloc = Loc.dummy })
         else
           let sub = self (n / 2) in
           let binop op =
             map2
               (fun e1 e2 ->
                 { Ast.edesc = Ast.Ebinop (op, e1, e2); eloc = Loc.dummy })
               sub sub
           in
           oneof
             [ binop Ast.Add; binop Ast.Mul; binop Ast.Sub;
               map
                 (fun e -> { Ast.edesc = Ast.Eunop (Ast.Neg, e); eloc = Loc.dummy })
                 sub ])

let arb_expr = QCheck.make ~print:Pretty.expr_to_string gen_expr

let rec expr_equal e1 e2 =
  match (e1.Ast.edesc, e2.Ast.edesc) with
  | Ast.Eint a, Ast.Eint b -> a = b
  | Ast.Ebool a, Ast.Ebool b -> a = b
  | Ast.Evar a, Ast.Evar b -> a = b
  | Ast.Eindex (a, i), Ast.Eindex (b, j) -> a = b && expr_equal i j
  | Ast.Eunop (o1, a), Ast.Eunop (o2, b) -> o1 = o2 && expr_equal a b
  | Ast.Ebinop (o1, a1, b1), Ast.Ebinop (o2, a2, b2) ->
    o1 = o2 && expr_equal a1 a2 && expr_equal b1 b2
  | Ast.Ecall (f, xs), Ast.Ecall (g, ys) ->
    f = g
    && List.length xs = List.length ys
    && List.for_all2 expr_equal xs ys
  | _ -> false

let prop_expr_roundtrip =
  QCheck.Test.make ~name:"printed expressions reparse to the same tree"
    ~count:200 arb_expr (fun e ->
      let src =
        Printf.sprintf "void main() { int y = %s; }" (Pretty.expr_to_string e)
      in
      let prog = parse src in
      match (List.hd prog.Ast.funcs).Ast.fbody with
      | [ { Ast.skind = Ast.Sdecl (_, _, Some e'); _ } ] -> expr_equal e e'
      | _ -> false)

let prop_lexer_total =
  QCheck.Test.make ~name:"lexer terminates or errors on arbitrary strings"
    ~count:300
    QCheck.(string_of_size (QCheck.Gen.int_range 0 40))
    (fun s ->
      match Lexer.tokenize s with
      | _ -> true
      | exception Loc.Error _ -> true)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "lang"
    [ ( "lexer",
        [ tc "token stream" test_tokens;
          tc "locations" test_token_locations;
          tc "two-char operators" test_two_char_operators;
          tc "comments" test_comment_skipping;
          tc "stray &" test_lexer_rejects_stray_amp ] );
      ( "parser",
        [ tc "sample program" test_parse_sample;
          tc "sids dense and unique" test_sid_dense_and_unique;
          tc "precedence" test_precedence;
          tc "left associativity" test_left_associativity;
          tc "else-if chain" test_else_if_chain;
          tc "syntax errors" test_parse_errors;
          tc "pretty/parse round trip" test_roundtrip ] );
      ( "typecheck",
        [ tc "accepts sample" test_accepts_sample;
          tc "rejects ill-typed programs" test_rejects;
          tc "rejects missing main" test_rejects_no_main;
          tc "array operations" test_array_ops_typecheck;
          tc "recursion" test_recursion_typechecks ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_expr_roundtrip; prop_lexer_total ] ) ]
