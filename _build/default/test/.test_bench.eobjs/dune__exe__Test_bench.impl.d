test/test_bench.ml: Alcotest Array Exom_bench Exom_cfg Exom_core Exom_interp Exom_lang List String
