test/test_util.ml: Alcotest Array Exom_util Fun List QCheck QCheck_alcotest String
