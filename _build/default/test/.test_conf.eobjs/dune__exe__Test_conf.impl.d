test/test_conf.ml: Alcotest Array Exom_cfg Exom_conf Exom_ddg Exom_interp Exom_lang List Option QCheck QCheck_alcotest
