test/test_conf.mli:
