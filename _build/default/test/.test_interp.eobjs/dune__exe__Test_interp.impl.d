test/test_interp.ml: Alcotest Exom_interp Exom_lang List QCheck QCheck_alcotest
