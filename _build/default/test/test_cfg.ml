(* Tests for CFGs, dominance, control dependence, alias classes, def/use
   locations and the condition-(iv) potential-dependence analysis. *)

module Ast = Exom_lang.Ast
module Typecheck = Exom_lang.Typecheck
module Alias = Exom_cfg.Alias
module Cfg = Exom_cfg.Cfg
module Dominance = Exom_cfg.Dominance
module Locs = Exom_cfg.Locs
module Potential = Exom_cfg.Potential
module Proginfo = Exom_cfg.Proginfo

let compile src = Typecheck.parse_and_check src

let sid_on_line prog line =
  let found = ref None in
  Ast.iter_program
    (fun s ->
      if Exom_lang.Loc.line s.Ast.sloc = line && !found = None then
        found := Some s.Ast.sid)
    prog;
  match !found with
  | Some sid -> sid
  | None -> Alcotest.failf "no statement on line %d" line

(* CFG construction *)

let straight_line = "void main() { int a = 1; int b = 2; print(a + b); }"

let test_straight_line () =
  let prog = compile straight_line in
  let cfg = Cfg.of_func (List.hd prog.Ast.funcs) in
  Alcotest.(check int) "entry+exit+3 stmts" 5 cfg.Cfg.nnodes;
  (* entry -> a -> b -> print -> exit, single successors everywhere *)
  let rec walk n seen =
    match Cfg.successors cfg n with
    | [] -> List.rev (n :: seen)
    | [ (s, _) ] -> walk s (n :: seen)
    | _ -> Alcotest.fail "unexpected branch"
  in
  let order = walk cfg.Cfg.entry [] in
  Alcotest.(check int) "5 nodes on path" 5 (List.length order);
  Alcotest.(check int) "ends at exit" cfg.Cfg.exit_
    (List.nth order 4)

let branching =
  {|
void main() {
  int x = input();
  if (x > 0) {
    print(1);
  } else {
    print(2);
  }
  print(3);
}
|}

let test_if_edges () =
  let prog = compile branching in
  let cfg = Cfg.of_func (List.hd prog.Ast.funcs) in
  let if_sid = sid_on_line prog 4 in
  let n = Cfg.node_of cfg if_sid in
  Alcotest.(check bool) "predicate node" true (Cfg.is_predicate_node cfg n);
  let then_succ = Cfg.branch_successor cfg n true in
  let else_succ = Cfg.branch_successor cfg n false in
  Alcotest.(check bool) "distinct branch successors" true (then_succ <> else_succ);
  let p1 = Cfg.node_of cfg (sid_on_line prog 5) in
  let p2 = Cfg.node_of cfg (sid_on_line prog 7) in
  Alcotest.(check (option int)) "then goes to print(1)" (Some p1) then_succ;
  Alcotest.(check (option int)) "else goes to print(2)" (Some p2) else_succ

let looping =
  {|
void main() {
  int i = 0;
  while (i < 10) {
    if (i == 5) {
      break;
    }
    i = i + 1;
  }
  print(i);
}
|}

let test_while_edges () =
  let prog = compile looping in
  let cfg = Cfg.of_func (List.hd prog.Ast.funcs) in
  let w = Cfg.node_of cfg (sid_on_line prog 4) in
  let brk = Cfg.node_of cfg (sid_on_line prog 6) in
  let inc = Cfg.node_of cfg (sid_on_line prog 8) in
  let out = Cfg.node_of cfg (sid_on_line prog 10) in
  (* loop back-edge: i = i + 1 goes to the while predicate *)
  Alcotest.(check (list int)) "inc -> while" [ w ]
    (List.map fst (Cfg.successors cfg inc));
  (* break jumps straight to print(i) *)
  Alcotest.(check (list int)) "break -> out" [ out ]
    (List.map fst (Cfg.successors cfg brk));
  (* while false-branch also reaches print(i) *)
  Alcotest.(check (option int)) "exit branch" (Some out)
    (Cfg.branch_successor cfg w false)

let test_return_to_exit () =
  let prog =
    compile
      "int f(int n) { if (n > 0) { return 1; } return 2; } void main() { \
       print(f(3)); }"
  in
  let fn = List.find (fun f -> f.Ast.fname = "f") prog.Ast.funcs in
  let cfg = Cfg.of_func fn in
  Ast.iter_stmts
    (fun s ->
      match s.Ast.skind with
      | Ast.Sreturn _ ->
        let n = Cfg.node_of cfg s.Ast.sid in
        Alcotest.(check (list int)) "return -> exit" [ cfg.Cfg.exit_ ]
          (List.map fst (Cfg.successors cfg n))
      | _ -> ())
    fn.Ast.fbody

(* Dominance and control dependence *)

let test_postdominators () =
  let prog = compile branching in
  let cfg = Cfg.of_func (List.hd prog.Ast.funcs) in
  let pdoms = Dominance.postdominators cfg in
  let if_n = Cfg.node_of cfg (sid_on_line prog 4) in
  let join = Cfg.node_of cfg (sid_on_line prog 9) in
  let p1 = Cfg.node_of cfg (sid_on_line prog 5) in
  Alcotest.(check bool) "join postdominates if" true
    (Dominance.Iset.mem join pdoms.(if_n));
  Alcotest.(check bool) "print(1) does not postdominate if" false
    (Dominance.Iset.mem p1 pdoms.(if_n))

let test_control_dependence_if () =
  let info = Proginfo.build (compile branching) in
  let prog = Proginfo.program info in
  let if_sid = sid_on_line prog 4 in
  Alcotest.(check (list int)) "print(1) depends on if" [ if_sid ]
    (Proginfo.control_deps info (sid_on_line prog 5));
  Alcotest.(check (list int)) "print(2) depends on if" [ if_sid ]
    (Proginfo.control_deps info (sid_on_line prog 7));
  Alcotest.(check (list int)) "join independent" []
    (Proginfo.control_deps info (sid_on_line prog 9))

let test_control_dependence_loop () =
  let info = Proginfo.build (compile looping) in
  let prog = Proginfo.program info in
  let w_sid = sid_on_line prog 4 in
  let if_sid = sid_on_line prog 5 in
  let inc_deps = Proginfo.control_deps info (sid_on_line prog 8) in
  (* Textbook Ferrante-Ottenstein-Warren with a break: i = i + 1 is
     directly control dependent on the if guarding the break (not on the
     loop predicate, whose dependence is transitive through the if). *)
  Alcotest.(check bool) "inc not directly dep on while" false
    (List.mem w_sid inc_deps);
  Alcotest.(check bool) "inc dep on if(break)" true (List.mem if_sid inc_deps);
  (let cfg = Exom_cfg.Proginfo.cfg_of info (Some "main") in
   let _, trans = Dominance.transitive_control_dependence cfg in
   let inc_node = Cfg.node_of cfg (sid_on_line prog 8) in
   let w_node = Cfg.node_of cfg w_sid in
   Alcotest.(check bool) "inc transitively dep on while" true
     (Dominance.Iset.mem w_node trans.(inc_node)));
  (* With a break in the body, re-reaching the loop predicate depends on
     the break's guard; without one it would be self-dependent. *)
  Alcotest.(check bool) "while depends on break guard" true
    (List.mem if_sid (Proginfo.control_deps info w_sid));
  (let simple = compile "void main() { int i = 0; while (i < 3) { i = i + 1; } }" in
   let info2 = Proginfo.build simple in
   let w2 = sid_on_line simple 1 in
   (* line 1 holds the whole program; find the while by predicate kind *)
   ignore w2;
   let w_sid2 = ref (-1) in
   Ast.iter_program
     (fun s -> if Ast.is_predicate s then w_sid2 := s.Ast.sid)
     simple;
   Alcotest.(check bool) "simple loop self-dependence" true
     (List.mem !w_sid2 (Proginfo.control_deps info2 !w_sid2)));
  (* print(i) after the loop depends on nothing: it always runs *)
  Alcotest.(check (list int)) "out independent" []
    (Proginfo.control_deps info (sid_on_line prog 10))

(* Alias classes *)

let alias_src =
  {|
int[] shared;
void fill(int[] dst) { dst[0] = 1; }
void main() {
  int[] a = new_array(4);
  int[] b = a;
  int[] c = new_array(4);
  shared = c;
  fill(a);
  print(b[0]);
}
|}

let test_alias_classes () =
  let prog = compile alias_src in
  let alias = Alias.build prog in
  let cls fname x =
    match Alias.class_of alias ~fname x with
    | Some c -> c
    | None -> Alcotest.failf "%s not an array" x
  in
  let main = Some "main" in
  Alcotest.(check int) "a ~ b" (cls main "a") (cls main "b");
  Alcotest.(check int) "c ~ shared" (cls main "c") (cls None "shared");
  Alcotest.(check bool) "a !~ c" true (cls main "a" <> cls main "c");
  (* parameter dst unifies with argument a *)
  Alcotest.(check int) "dst ~ a" (cls (Some "fill") "dst") (cls main "a");
  Alcotest.(check bool) "non-array" true
    (Alias.class_of alias ~fname:main "nonexistent" = None)

(* Def/use locations with call summaries *)

let summary_src =
  {|
int g = 0;
int[] buf;
void poke() { g = g + 1; buf[0] = 7; }
void indirect() { poke(); }
void main() {
  buf = new_array(2);
  indirect();
  print(g);
}
|}

let test_call_summaries () =
  let prog = compile summary_src in
  let info = Proginfo.build prog in
  let locs = Proginfo.locs info in
  let g = Locs.Lvar (None, "g") in
  Alcotest.(check bool) "poke defines g" true
    (Locs.Lset.mem g (Locs.def_summary locs "poke"));
  Alcotest.(check bool) "indirect inherits g" true
    (Locs.Lset.mem g (Locs.def_summary locs "indirect"));
  (* the call statement indirect() defines g transitively *)
  let call_sid = sid_on_line prog 8 in
  Alcotest.(check bool) "call stmt defines g" true (Locs.defines locs call_sid g);
  (* and the array class of buf *)
  let buf_class =
    match Alias.class_of (Proginfo.alias info) ~fname:None "buf" with
    | Some c -> Locs.Larr c
    | None -> Alcotest.fail "buf not an array"
  in
  Alcotest.(check bool) "call stmt defines buf class" true
    (Locs.defines locs call_sid buf_class);
  (* print(g) uses g *)
  Alcotest.(check bool) "print uses g" true
    (Locs.Lset.mem g (Locs.uses locs (sid_on_line prog 9)))

(* Potential dependence: the paper's motivating example (Figure 1),
   transliterated.  save_orig_name wrongly false => S4 not taken =>
   flags never ORed. *)

let gzip_like =
  {|
int save_orig_name = 0;
int flags = 0;
void main() {
  int deflated = 8;
  if (save_orig_name == 1) {
    flags = flags + 32;
  }
  print(deflated);
  print(flags);
}
|}

let test_potential_dependence_fig1 () =
  let prog = compile gzip_like in
  let info = Proginfo.build prog in
  let pot = Potential.create info in
  let if_sid = sid_on_line prog 6 in
  let print_flags = sid_on_line prog 10 in
  let print_defl = sid_on_line prog 9 in
  let flags = Locs.Lvar (None, "flags") in
  (* The use of flags at S10 potentially depends on the untaken S4. *)
  Alcotest.(check bool) "flags@print <- if(save_orig_name)" true
    (Potential.could_reach_differently pot ~pred_sid:if_sid ~taken:false
       ~use_sid:print_flags ~loc:flags);
  (* deflated is never assigned in the branch: no potential dep. *)
  Alcotest.(check bool) "deflated unaffected" false
    (Potential.could_reach_differently pot ~pred_sid:if_sid ~taken:false
       ~use_sid:print_defl ~loc:(Locs.Lvar (Some "main", "deflated")))

let test_potential_dependence_kill () =
  (* The kill case of Definition 1: x=1 on the untaken branch is killed
     by the unconditional x=2 before the use, and x=2 itself reaches the
     use on both branches, so it is not a *different* definition: the
     static query must be false.  (Dynamically this case is also
     excluded by condition (iii); see test_ddg.ml.) *)
  let src =
    {|
void main() {
  int x = 0;
  int p = input();
  if (p > 0) {
    x = 1;
  }
  x = 2;
  print(x);
}
|}
  in
  let prog = compile src in
  let info = Proginfo.build prog in
  let pot = Potential.create info in
  let if_sid = sid_on_line prog 5 in
  let use = sid_on_line prog 9 in
  Alcotest.(check bool) "killed def does not qualify" false
    (Potential.could_reach_differently pot ~pred_sid:if_sid ~taken:false
       ~use_sid:use ~loc:(Locs.Lvar (Some "main", "x")));
  (* A use of a different variable with no def on either path: false. *)
  Alcotest.(check bool) "no def of p after predicate" false
    (Potential.could_reach_differently pot ~pred_sid:if_sid ~taken:false
       ~use_sid:use ~loc:(Locs.Lvar (Some "main", "p")))

let test_potential_dependence_loop_carried () =
  (* x = x + 1 inside a loop: an alternative def of x can reach the use
     of x after the loop if the loop predicate flips. *)
  let src =
    {|
void main() {
  int x = 0;
  int i = 0;
  while (i < input()) {
    x = x + 1;
    i = i + 1;
  }
  print(x);
}
|}
  in
  let prog = compile src in
  let info = Proginfo.build prog in
  let pot = Potential.create info in
  let w = sid_on_line prog 5 in
  let use = sid_on_line prog 9 in
  Alcotest.(check bool) "loop body def reaches" true
    (Potential.could_reach_differently pot ~pred_sid:w ~taken:false ~use_sid:use
       ~loc:(Locs.Lvar (Some "main", "x")))

let test_potential_dependence_cross_function () =
  let prog = compile summary_src in
  let info = Proginfo.build prog in
  let pot = Potential.create info in
  (* Inside poke, no predicate; construct one via a variant source. *)
  let src =
    {|
int g = 0;
void bump() { g = g + 1; }
void main() {
  int c = input();
  if (c > 0) {
    bump();
  }
  print(g);
}
|}
  in
  ignore prog;
  let prog = compile src in
  let info2 = Proginfo.build prog in
  let pot2 = Potential.create info2 in
  let if_sid = sid_on_line prog 6 in
  let use = sid_on_line prog 9 in
  Alcotest.(check bool) "call in branch defines g" true
    (Potential.could_reach_differently pot2 ~pred_sid:if_sid ~taken:false
       ~use_sid:use ~loc:(Locs.Lvar (None, "g")));
  ignore (info, pot)

(* Property: condition (iv) never holds for a location with no
   definition reachable from the untaken branch. *)
let prop_no_defs_no_potential =
  QCheck.Test.make ~name:"no reachable def => no potential dependence"
    ~count:30
    QCheck.(int_range 1 5)
    (fun k ->
      let src =
        Printf.sprintf
          {|
void main() {
  int y = 0;
  int p = input();
  if (p > %d) {
    print(p);
  }
  print(y);
}
|}
          k
      in
      let prog = compile src in
      let info = Proginfo.build prog in
      let pot = Potential.create info in
      let if_sid = sid_on_line prog 5 in
      let use = sid_on_line prog 8 in
      not
        (Potential.could_reach_differently pot ~pred_sid:if_sid ~taken:false
           ~use_sid:use ~loc:(Locs.Lvar (Some "main", "y"))))

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "cfg"
    [ ( "construction",
        [ tc "straight line" test_straight_line;
          tc "if edges" test_if_edges;
          tc "while edges" test_while_edges;
          tc "return to exit" test_return_to_exit ] );
      ( "dominance",
        [ tc "postdominators" test_postdominators;
          tc "control dependence (if)" test_control_dependence_if;
          tc "control dependence (loop)" test_control_dependence_loop ] );
      ("alias", [ tc "classes" test_alias_classes ]);
      ("locations", [ tc "call summaries" test_call_summaries ]);
      ( "potential",
        [ tc "figure 1" test_potential_dependence_fig1;
          tc "killed definition" test_potential_dependence_kill;
          tc "loop carried" test_potential_dependence_loop_carried;
          tc "cross function" test_potential_dependence_cross_function ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_no_defs_no_potential ] ) ]
