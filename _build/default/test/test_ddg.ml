(* Tests for dynamic slicing, potential dependences (Definition 1) and
   relevant slicing — including the paper's headline behaviour: dynamic
   slices MISS execution omission errors, relevant slices catch them. *)

module Ast = Exom_lang.Ast
module Typecheck = Exom_lang.Typecheck
module Interp = Exom_interp.Interp
module Trace = Exom_interp.Trace
module Proginfo = Exom_cfg.Proginfo
module Relevant = Exom_ddg.Relevant
module Slice = Exom_ddg.Slice

let compile src = Typecheck.parse_and_check src

let sid_on_line prog line =
  let found = ref None in
  Ast.iter_program
    (fun s ->
      if Exom_lang.Loc.line s.Ast.sloc = line && !found = None then
        found := Some s.Ast.sid)
    prog;
  match !found with
  | Some sid -> sid
  | None -> Alcotest.failf "no statement on line %d" line

let traced_run prog input =
  let r = Interp.run prog ~input in
  match (r.Interp.outcome, r.Interp.trace) with
  | Ok (), Some t -> (r, t)
  | Error _, _ -> Alcotest.fail "run aborted"
  | _, None -> Alcotest.fail "no trace"

(* nth output instance index *)
let output_instance (r : Interp.run) n = fst (List.nth r.Interp.outputs n)

(* Dynamic slicing on straight-line data flow *)

let test_slice_straight_line () =
  let src =
    {|
void main() {
  int a = 1;
  int b = 2;
  int c = a + 3;
  print(c);
  print(b);
}
|}
  in
  let prog = compile src in
  let r, t = traced_run prog [] in
  let slice_c = Slice.compute t ~criteria:[ output_instance r 0 ] in
  (* print(c) <- c <- a; not b *)
  Alcotest.(check int) "3 instances" 3 (Slice.dynamic_size slice_c);
  Alcotest.(check bool) "a in slice" true
    (Slice.mem_sid slice_c (sid_on_line prog 3));
  Alcotest.(check bool) "b not in slice" false
    (Slice.mem_sid slice_c (sid_on_line prog 4))

let test_slice_control_dependence () =
  let src =
    {|
void main() {
  int k = input();
  int y = 0;
  if (k > 0) {
    y = 1;
  }
  print(y);
}
|}
  in
  let prog = compile src in
  let r, t = traced_run prog [ 5 ] in
  let slice = Slice.compute t ~criteria:[ output_instance r 0 ] in
  (* y=1 executed inside the branch: slice must pull in the predicate
     (dynamic control dependence) and then k. *)
  Alcotest.(check bool) "if in slice" true
    (Slice.mem_sid slice (sid_on_line prog 5));
  Alcotest.(check bool) "k in slice" true
    (Slice.mem_sid slice (sid_on_line prog 3))

let test_slice_through_call () =
  let src =
    {|
int add(int a, int b) { return a + b; }
void main() {
  int x = input();
  int unused = 99;
  int s = add(x, 1);
  print(s);
}
|}
  in
  let prog = compile src in
  let r, t = traced_run prog [ 4 ] in
  let slice = Slice.compute t ~criteria:[ output_instance r 0 ] in
  Alcotest.(check bool) "x in slice" true
    (Slice.mem_sid slice (sid_on_line prog 4));
  Alcotest.(check bool) "return in slice" true
    (Slice.mem_sid slice (sid_on_line prog 2));
  Alcotest.(check bool) "unused not in slice" false
    (Slice.mem_sid slice (sid_on_line prog 5))

let test_slice_arrays () =
  let src =
    {|
void main() {
  int[] a = new_array(4);
  a[0] = 10;
  a[1] = 20;
  print(a[0]);
}
|}
  in
  let prog = compile src in
  let r, t = traced_run prog [] in
  let slice = Slice.compute t ~criteria:[ output_instance r 0 ] in
  Alcotest.(check bool) "a[0]=10 in slice" true
    (Slice.mem_sid slice (sid_on_line prog 4));
  Alcotest.(check bool) "a[1]=20 not in slice" false
    (Slice.mem_sid slice (sid_on_line prog 5))

(* The paper's Figure 1 scenario: an execution omission error.  The
   fault is save_orig_name = 0 (should be 1); the branch at line 6 is
   wrongly not taken, flags keeps 0, and print(flags) shows the wrong
   value. *)

let fig1_src =
  {|
int save_orig_name = 0;
int flags = 0;
void main() {
  int deflated = 8;
  if (save_orig_name == 1) {
    flags = flags + 32;
  }
  print(deflated);
  print(flags);
}
|}

let fig1_setup () =
  let prog = compile fig1_src in
  let info = Proginfo.build prog in
  let r, t = traced_run prog [] in
  let rel = Relevant.create info t in
  (prog, info, r, t, rel)

let test_fig1_dynamic_slice_misses () =
  let prog, _, r, t, _ = fig1_setup () in
  let wrong = output_instance r 1 (* print(flags) *) in
  let ds = Slice.compute t ~criteria:[ wrong ] in
  (* DS contains the flags init and the print, but NOT the root cause
     save_orig_name or the untaken if. *)
  Alcotest.(check bool) "flags init in DS" true
    (Slice.mem_sid ds (sid_on_line prog 3));
  Alcotest.(check bool) "root cause NOT in DS" false
    (Slice.mem_sid ds (sid_on_line prog 2));
  Alcotest.(check bool) "if NOT in DS" false
    (Slice.mem_sid ds (sid_on_line prog 6))

let test_fig1_pd () =
  let prog, _, r, _, rel = fig1_setup () in
  let wrong = output_instance r 1 in
  let pd = Relevant.pd rel wrong in
  (* print(flags) potentially depends on the if instance *)
  let if_sid = sid_on_line prog 6 in
  Alcotest.(check int) "one PD edge" 1 (List.length pd);
  let _, t = traced_run prog [] in
  Alcotest.(check bool) "PD is the if" true
    (List.for_all (fun i -> (Trace.get t i).Trace.sid = if_sid) pd);
  (* print(deflated) has no PD *)
  Alcotest.(check (list int)) "deflated PD empty" []
    (Relevant.pd rel (output_instance r 0))

let test_fig1_relevant_slice_catches () =
  let prog, _, r, _, rel = fig1_setup () in
  let wrong = output_instance r 1 in
  let rs = Relevant.relevant_slice rel ~criteria:[ wrong ] in
  Alcotest.(check bool) "if in RS" true (Slice.mem_sid rs (sid_on_line prog 6));
  Alcotest.(check bool) "root cause in RS" true
    (Slice.mem_sid rs (sid_on_line prog 2))

(* Condition (iii): the kill case from the paper's Definition 1
   discussion — the reaching definition executes after the predicate, so
   no PD edge must be added even though the static check is true. *)
let test_pd_condition_iii () =
  let src =
    {|
void main() {
  int x = 0;
  int p = input();
  if (p > 0) {
    x = 1;
  }
  x = 2;
  print(x);
}
|}
  in
  let prog = compile src in
  let info = Proginfo.build prog in
  let r, t = traced_run prog [ 0 ] in
  let rel = Relevant.create info t in
  let wrong = output_instance r 0 in
  Alcotest.(check (list int)) "no PD: reaching def after predicate" []
    (Relevant.pd rel wrong);
  ignore prog

(* Condition (ii): a use inside the branch is control dependent on the
   predicate — explicit dependence, not a potential one. *)
let test_pd_condition_ii () =
  let src =
    {|
void main() {
  int x = 0;
  int p = input();
  if (p > 0) {
    print(x);
  }
}
|}
  in
  let prog = compile src in
  let info = Proginfo.build prog in
  let r, t = traced_run prog [ 1 ] in
  let rel = Relevant.create info t in
  Alcotest.(check (list int)) "no PD for control-dependent use" []
    (Relevant.pd rel (output_instance r 0));
  ignore prog

(* Loop-carried potential dependences: every earlier qualifying
   iteration's predicate instance appears in PD. *)
let test_pd_loop_instances () =
  let src =
    {|
void main() {
  int x = 0;
  int i = 0;
  while (i < 4) {
    if (i == 9) {
      x = 100;
    }
    i = i + 1;
  }
  print(x);
}
|}
  in
  let prog = compile src in
  let info = Proginfo.build prog in
  let r, t = traced_run prog [] in
  let rel = Relevant.create info t in
  let pd = Relevant.pd rel (output_instance r 0) in
  let if_sid = sid_on_line prog 6 in
  let if_instances =
    List.filter (fun i -> (Trace.get t i).Trace.sid = if_sid) pd
  in
  (* the if executed 4 times, all after x's def and before the use *)
  Alcotest.(check int) "all four if instances" 4 (List.length if_instances)

(* The dynamic-instance blowup of relevant slicing (paper §2): RS pulls
   in orders of magnitude more instances than DS when a hot predicate
   guards a rare def. *)
let test_rs_dynamic_blowup () =
  let src =
    {|
void main() {
  int x = 0;
  int i = 0;
  while (i < 50) {
    if (i == 999) {
      x = 1;
    }
    i = i + 1;
  }
  print(x);
}
|}
  in
  let prog = compile src in
  let info = Proginfo.build prog in
  let r, t = traced_run prog [] in
  let rel = Relevant.create info t in
  let wrong = output_instance r 0 in
  let ds = Slice.compute t ~criteria:[ wrong ] in
  let rs = Relevant.relevant_slice rel ~criteria:[ wrong ] in
  Alcotest.(check bool) "RS dynamic much larger" true
    (Slice.dynamic_size rs >= 10 * Slice.dynamic_size ds);
  Alcotest.(check bool) "RS static close to DS static" true
    (Slice.static_size rs <= Slice.static_size ds + 4);
  ignore prog

(* Union dependence graph *)

let test_union_graph_pairs () =
  let src =
    {|
void main() {
  int k = input();
  int y = 0;
  if (k > 0) {
    y = 1;
  }
  print(y);
}
|}
  in
  let prog = compile src in
  let union = Exom_ddg.Union_graph.collect prog [ [ 1 ]; [ -1 ] ] in
  Alcotest.(check int) "two runs" 2 (Exom_ddg.Union_graph.runs union);
  let k = sid_on_line prog 3 in
  let y0 = sid_on_line prog 4 in
  let y1 = sid_on_line prog 6 in
  let pr = sid_on_line prog 8 in
  (* both defs of y reach the print across the two runs *)
  Alcotest.(check bool) "y=0 -> print witnessed" true
    (Exom_ddg.Union_graph.observed union ~def_sid:y0 ~use_sid:pr);
  Alcotest.(check bool) "y=1 -> print witnessed" true
    (Exom_ddg.Union_graph.observed union ~def_sid:y1 ~use_sid:pr);
  (* k never flows to the print *)
  Alcotest.(check bool) "k -> print never witnessed" false
    (Exom_ddg.Union_graph.observed union ~def_sid:k ~use_sid:pr);
  Alcotest.(check bool) "all statements executed" true
    (Exom_ddg.Union_graph.executed union y1)

let test_union_graph_evidence_filter () =
  (* a never-executed definition passes the filter (the omission case);
     an executed-but-unwitnessed pair is discarded *)
  let src =
    {|
int flag = 0;
void main() {
  int y = 0;
  if (flag == 1) {
    y = 1;
  }
  print(y);
}
|}
  in
  let prog = compile src in
  let union = Exom_ddg.Union_graph.collect prog [ [] ] in
  let y1 = sid_on_line prog 6 in
  let pr = sid_on_line prog 8 in
  let y0 = sid_on_line prog 4 in
  Alcotest.(check bool) "unexecuted def passes" true
    (Exom_ddg.Union_graph.evidence_filter union ~def_sid:y1 ~use_sid:pr);
  Alcotest.(check bool) "witnessed pair passes" true
    (Exom_ddg.Union_graph.evidence_filter union ~def_sid:y0 ~use_sid:pr);
  (* y=0 executed but never flows to itself *)
  Alcotest.(check bool) "executed unwitnessed pair discarded" false
    (Exom_ddg.Union_graph.evidence_filter union ~def_sid:y0 ~use_sid:y0)

(* DOT rendering *)

let test_dot_render () =
  let src =
    {|
void main() {
  int a = 1;
  int b = a + 1;
  print(b);
}
|}
  in
  let prog = compile src in
  let r, t = traced_run prog [] in
  let criterion = output_instance r 0 in
  let slice = Slice.compute t ~criteria:[ criterion ] in
  let dot =
    Exom_ddg.Dot.render ~slice ~highlight:[ criterion ]
      ~describe:(fun i -> Printf.sprintf "i%d" i)
      t
  in
  Alcotest.(check bool) "digraph header" true
    (String.length dot > 0 && String.sub dot 0 7 = "digraph");
  (* all three slice nodes and both data edges appear *)
  let contains needle =
    let n = String.length needle and h = String.length dot in
    let rec scan i = i + n <= h && (String.sub dot i n = needle || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "node a" true (contains "n0 [");
  Alcotest.(check bool) "edge b->a" true (contains "n1 -> n0");
  Alcotest.(check bool) "edge print->b" true (contains "n2 -> n1");
  Alcotest.(check bool) "criterion highlighted" true (contains "fillcolor");
  (* implicit edges render bold red *)
  let dot2 =
    Exom_ddg.Dot.render ~implicit:[ (0, 2) ]
      ~describe:(fun i -> string_of_int i)
      t
  in
  let contains2 needle =
    let n = String.length needle and h = String.length dot2 in
    let rec scan i = i + n <= h && (String.sub dot2 i n = needle || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "implicit edge styled" true
    (contains2 "color=red")

(* Shortest chains (the paper's OS) *)

let test_shortest_chain () =
  let src =
    {|
void main() {
  int a = input();
  int b = a + 1;
  int c = b + 1;
  print(c);
}
|}
  in
  let prog = compile src in
  let r, t = traced_run prog [ 7 ] in
  let criterion = output_instance r 0 in
  (match Slice.shortest_chain t ~criterion ~from_sids:[ sid_on_line prog 3 ] with
  | Some chain ->
    Alcotest.(check int) "chain a->b->c->print" 4 (List.length chain);
    Alcotest.(check int) "ends at criterion" criterion
      (List.nth chain (List.length chain - 1))
  | None -> Alcotest.fail "chain not found");
  match Slice.shortest_chain t ~criterion ~from_sids:[ 99999 ] with
  | Some _ -> Alcotest.fail "phantom chain"
  | None -> ()

(* Property: a dynamic slice is closed under explicit predecessors. *)
let prop_slice_closed =
  QCheck.Test.make ~name:"slices are dependence-closed" ~count:40
    QCheck.(int_range 0 30)
    (fun n ->
      let src =
        {|
void main() {
  int n = input();
  int s = 0;
  int i = 0;
  while (i < n) {
    if (i % 3 == 0) {
      s = s + i;
    }
    i = i + 1;
  }
  print(s);
}
|}
      in
      let prog = compile src in
      let r, t = traced_run prog [ n ] in
      let slice = Slice.compute t ~criteria:[ output_instance r 0 ] in
      Slice.Iset.for_all
        (fun idx ->
          List.for_all
            (fun p -> p < 0 || Slice.mem slice p)
            (Slice.explicit_preds t idx))
        (Slice.members slice))

(* Property: DS ⊆ RS, both as instance sets and statement sets. *)
let prop_ds_subset_rs =
  QCheck.Test.make ~name:"dynamic slice is contained in relevant slice"
    ~count:20
    QCheck.(int_range 0 12)
    (fun n ->
      let src =
        {|
void main() {
  int n = input();
  int x = 0;
  int i = 0;
  while (i < n) {
    if (i % 2 == 0) {
      x = x + i;
    }
    i = i + 1;
  }
  print(x);
}
|}
      in
      let prog = compile src in
      let info = Proginfo.build prog in
      let r, t = traced_run prog [ n ] in
      let rel = Relevant.create info t in
      let c = output_instance r 0 in
      let ds = Slice.compute t ~criteria:[ c ] in
      let rs = Relevant.relevant_slice rel ~criteria:[ c ] in
      Slice.Iset.subset (Slice.members ds) (Slice.members rs))

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "ddg"
    [ ( "dynamic slicing",
        [ tc "straight line" test_slice_straight_line;
          tc "control dependence" test_slice_control_dependence;
          tc "through call" test_slice_through_call;
          tc "arrays" test_slice_arrays ] );
      ( "figure 1",
        [ tc "dynamic slice misses root cause" test_fig1_dynamic_slice_misses;
          tc "PD edges" test_fig1_pd;
          tc "relevant slice catches root cause" test_fig1_relevant_slice_catches
        ] );
      ( "potential dependence conditions",
        [ tc "condition (iii): late reaching def" test_pd_condition_iii;
          tc "condition (ii): control dependence" test_pd_condition_ii;
          tc "loop instances" test_pd_loop_instances;
          tc "dynamic blowup" test_rs_dynamic_blowup ] );
      ( "union graph",
        [ tc "witnessed pairs" test_union_graph_pairs;
          tc "evidence filter" test_union_graph_evidence_filter ] );
      ("dot", [ tc "render" test_dot_render ]);
      ("chains", [ tc "shortest chain" test_shortest_chain ]);
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_slice_closed; prop_ds_subset_rs ] ) ]
