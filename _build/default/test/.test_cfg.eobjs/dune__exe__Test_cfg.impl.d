test/test_cfg.ml: Alcotest Array Exom_cfg Exom_lang List Printf QCheck QCheck_alcotest
